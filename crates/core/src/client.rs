//! The client side of Flock: the connection handle (paper §3), the
//! leader's send path over the TCQ (§4.2), the response dispatcher (§4.3),
//! sender-side thread scheduling (§5.2), and one-sided memory operations
//! (§6).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use flock_fabric::{
    Access, CompletionQueue, CostModel, CqOpcode, MemoryRegion, Node, NodeId, Qp, RemoteAddr,
    SendWr, Sge, Transport, WrId,
};
use flock_sync::clock::{self, TaskHandle};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::credit::{CreditState, MedianWindow};
use crate::domain::{
    await_reply, AttachMemRequest, AttachRequest, ConnectRequest, CtrlMsg, DetachRequest,
    ExportRequest, FlockDomain, MemRegionInfo, RingInfo, SegmentLease,
};
use crate::error::{FlockError, Result};
use crate::msg::{self, EntryMeta, EntryRef, MsgHeader, FLAG_CREDIT_GRANT};
use crate::ring::{RingConsumer, RingLayout, RingProducer};
use crate::sched::thread::{assign_threads, ThreadLoadStats};
use crate::tcq::{Outcome, Tcq};

/// Per-thread scratch slot size for one-sided operation payloads/results.
pub const MEM_SCRATCH: usize = 4096;
/// Maximum registered threads per connection handle.
pub const MAX_THREADS: usize = 256;

/// Client-side configuration for a connection handle.
#[derive(Debug, Clone)]
pub struct HandleConfig {
    /// Number of RC QPs multiplexed under this handle.
    pub n_qps: usize,
    /// Ring buffer capacity per QP (bytes).
    pub ring_capacity: usize,
    /// TCQ batch bound (coalesced requests per message).
    pub batch_limit: usize,
    /// Disable coalescing (ablation: every request is its own message).
    pub coalescing: bool,
    /// Sender-side thread scheduling interval.
    pub sched_interval: Duration,
    /// Run the sender-side thread scheduler (ablation switch).
    pub auto_thread_sched: bool,
    /// Signal every Nth RDMA write (selective signaling, paper §7).
    pub signal_every: u64,
    /// Default timeout for blocking waits.
    pub timeout: Duration,
    /// Materialize all `n_qps` lanes during `fl_connect` instead of
    /// lazily on first use. Connection setup is control-plane bound
    /// (QP creation + MR registration, Swift in PAPERS.md), so the
    /// default gets to the first RPC after a single control QP and
    /// attaches the remaining data lanes as threads land on them.
    pub eager_qps: bool,
    /// Threads the one-sided scratch region is sized for (its MR is
    /// `mem_threads * MEM_SCRATCH` bytes, registered at connect — the
    /// dominant MR-registration cost of the handle). Lower it for
    /// connection-churn workloads that never issue one-sided ops.
    pub mem_threads: usize,
    /// Tenant this handle connects on behalf of (gateway topology;
    /// [`crate::sched::DEFAULT_TENANT`] = 0 for single-tenant use). The
    /// server groups senders by tenant for AQP share caps and
    /// per-tenant accounting.
    pub tenant: u32,
    /// Give every registered thread a dedicated RC QP for its one-sided
    /// operations (the conventional FaRM/HERD design) instead of riding
    /// the shared RPC lanes' doorbells. This is the faithful one-sided
    /// baseline for the crossover experiments: per-thread QPs multiply
    /// per-client NIC connection state with fan-in — the state Flock's
    /// QP sharing amortizes away — so the responder's connection cache
    /// starts missing once total readers exceed its reach. Default off:
    /// Flock proper coalesces memory ops onto the shared lanes.
    pub dedicated_mem_qps: bool,
}

impl Default for HandleConfig {
    fn default() -> Self {
        HandleConfig {
            n_qps: 4,
            ring_capacity: 1 << 16,
            batch_limit: 16,
            coalescing: true,
            sched_interval: Duration::from_millis(10),
            auto_thread_sched: true,
            signal_every: 64,
            timeout: Duration::from_secs(10),
            eager_qps: false,
            mem_threads: MAX_THREADS,
            tenant: crate::sched::DEFAULT_TENANT,
            dedicated_mem_qps: false,
        }
    }
}

/// A request item travelling through the TCQ.
pub(crate) enum ClientReq {
    /// An RPC request: metadata plus payload. The payload is a shared
    /// [`Bytes`] so handing it from the submitting thread to the leader
    /// (and retrying/re-batching) never copies the bytes — the only copy
    /// on the send path is the encode into the staging ring.
    Rpc(EntryMeta, Bytes),
    /// A pre-built one-sided work request.
    Mem(SendWr),
}

/// Per-QP client context.
pub(crate) struct ClientQpCtx {
    index: usize,
    qp: Arc<flock_fabric::Qp>,
    tcq: Tcq<ClientReq>,
    req_prod: Mutex<RingProducer>,
    req_remote: RingInfo,
    staging: Arc<MemoryRegion>,
    /// Consumed head of the *server's request ring*, piggybacked on
    /// responses; read by the leader before reserving.
    server_head: AtomicU64,
    resp_mr: Arc<MemoryRegion>,
    resp_cons: Mutex<RingConsumer>,
    /// Consumed head of our response ring (piggybacked on requests).
    resp_head_shared: AtomicU64,
    credits: Mutex<CreditState>,
    credit_cond: Condvar,
    degree: Mutex<MedianWindow>,
    active: AtomicBool,
    canary_seq: AtomicU64,
    write_count: AtomicU64,
    messages_sent: AtomicU64,
    requests_sent: AtomicU64,
}

impl ClientQpCtx {
    fn next_canary(&self) -> u64 {
        // Nonzero, unique per message on this QP.
        0x5EED_0000_0000_0001 + self.canary_seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// Number of scratch sub-slots per thread (concurrent one-sided ops).
pub const MEM_SUBSLOTS: usize = 8;
/// Bytes per scratch sub-slot.
pub const MEM_SUBSLOT_SIZE: usize = MEM_SCRATCH / MEM_SUBSLOTS;

/// Bookkeeping for one pending one-sided operation.
struct MemPending {
    /// Sub-slot bitmask held by the operation.
    mask: u8,
    /// Absolute offset of the result bytes in the handle's scratch MR.
    scratch_off: usize,
    /// Bytes to copy out on success.
    result_len: usize,
    /// Deferred completion: the dispatcher publishes only a marker and
    /// leaves the payload in scratch until the issuing thread copies it
    /// out with [`FlThread::take_deferred`] — the one-sided fast path
    /// stays allocation-free this way.
    defer: bool,
}

/// A point-in-time snapshot of one QP lane's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpMetrics {
    /// Coalesced messages sent on the lane.
    pub messages: u64,
    /// Individual requests sent on the lane.
    pub requests: u64,
    /// Credits currently available.
    pub credits: u32,
    /// Whether the server's scheduler keeps the lane active.
    pub active: bool,
}

/// A point-in-time snapshot of a connection handle's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct HandleMetrics {
    /// Total coalesced messages sent.
    pub messages: u64,
    /// Total requests sent.
    pub requests: u64,
    /// Mean coalescing degree (requests per message; 0 before traffic).
    pub degree: f64,
    /// Lanes currently active.
    pub active_qps: usize,
    /// Registered application threads.
    pub threads: usize,
    /// Per-lane breakdown.
    pub per_qp: Vec<QpMetrics>,
}

/// A handle to an in-flight one-sided operation (coroutine-style
/// pipelining, paper §8.5.2). Obtain via [`FlThread::read_async`],
/// [`FlThread::write_async`], or [`FlThread::read_batch`]; poll with
/// [`FlThread::try_mem`], block with [`FlThread::wait_mem`], or — for
/// deferred batch reads — copy out with [`FlThread::take_deferred`].
#[derive(Debug, Clone, Copy)]
pub struct MemToken {
    wr_id: u64,
    /// Scratch sub-slots held until the result is consumed (deferred
    /// reads free them in `take_deferred`, everything else in the
    /// dispatcher).
    mask: u8,
    /// Absolute scratch offset of the landing zone.
    scratch_off: usize,
    /// Bytes the operation reads back.
    len: usize,
}

/// Per-application-thread context.
pub(crate) struct ThreadCtx {
    id: u32,
    next_seq: AtomicU64,
    outstanding: AtomicU64,
    current_qp: AtomicUsize,
    target_qp: AtomicUsize,
    inbox: Mutex<HashMap<u64, Bytes>>,
    inbox_cond: Condvar,
    // Stats for Algorithm 1 (since last scheduling interval).
    req_sizes: Mutex<MedianWindow>,
    bytes: AtomicU64,
    reqs: AtomicU64,
    // In-flight one-sided operations (up to MEM_SUBSLOTS concurrently).
    mem_pending: Mutex<HashMap<u64, MemPending>>,
    mem_results: Mutex<HashMap<u64, std::result::Result<Vec<u8>, &'static str>>>,
    mem_cond: Condvar,
    /// Bitmap of free scratch sub-slots.
    mem_free: Mutex<u8>,
    /// This thread's dedicated one-sided QP
    /// ([`HandleConfig::dedicated_mem_qps`]); empty when memory ops
    /// coalesce onto the shared lanes (the default), or when the
    /// mem-QP attach failed and the thread fell back to them.
    mem_qp: OnceLock<Arc<Qp>>,
}

/// Shared state behind a [`ConnectionHandle`].
pub(crate) struct HandleInner {
    node: Arc<Node>,
    #[allow(dead_code)]
    server_node: NodeId,
    sender_id: u32,
    cfg: HandleConfig,
    /// Control channel to the server (attach/detach after connect).
    ctrl: Sender<CtrlMsg>,
    /// QP lanes, a dense prefix of which is materialized: slot `i` is set
    /// iff `i < lane_count`. Slots are write-once, so the send path reads
    /// a lane with no lock at all.
    lanes: Vec<OnceLock<Arc<ClientQpCtx>>>,
    /// Materialized-lane count. Stored with `Release` *after* the slot is
    /// set; readers `Acquire` it before touching `lanes[..count]`.
    lane_count: AtomicUsize,
    /// Single-flight guard for lane attach (a `Mutex` would be held
    /// across the control-plane round trip, which virtual-time tasks must
    /// never do — losers spin through the clock seam instead).
    attach_busy: AtomicBool,
    threads: RwLock<Vec<Arc<ThreadCtx>>>,
    /// Registered-thread count mirror of `threads.len()` (lock-free read
    /// on the send hot path, see [`HandleInner::boarding_window`]).
    thread_count: AtomicUsize,
    mem_regions: Vec<MemRegionInfo>,
    mem_mr: Arc<MemoryRegion>,
    mem_wr_seq: AtomicU64,
    /// Send CQ shared by the dedicated mem QPs (when
    /// [`HandleConfig::dedicated_mem_qps`] is set): one poll point for
    /// the dispatcher regardless of how many threads attached a QP.
    mem_cq: Option<Arc<CompletionQueue>>,
    /// Fabric cost model: charges virtual CPU time for host-side work
    /// (doorbells, memcpys, polling) under a virtual-time executor;
    /// charges are no-ops in threaded mode.
    cost: CostModel,
    stop: AtomicBool,
    /// Resources returned to the node's QP pool / MR cache (graceful
    /// close); guards against double release.
    released: AtomicBool,
}

impl HandleInner {
    /// The materialized lane at `idx` (must be `< lane_count`).
    fn lane(&self, idx: usize) -> &Arc<ClientQpCtx> {
        self.lanes[idx].get().expect("lane not materialized")
    }

    /// Iterate the materialized lanes (the dense prefix).
    fn lanes_live(&self) -> impl Iterator<Item = &Arc<ClientQpCtx>> {
        let n = self.lane_count.load(Ordering::Acquire);
        self.lanes[..n]
            .iter()
            .map(|slot| slot.get().expect("dense lane prefix"))
    }

    /// TCQ boarding window (see [`crate::tcq::Tcq::join_with`]): a leader
    /// yields once before collecting its batch so that concurrently
    /// sending threads land in *this* batch. On real hardware the
    /// combining window exists for free (doorbell + DMA latency); in the
    /// simulator the flush is pure CPU work, so without this the window
    /// is a few nanoseconds and coalescing would depend on preemption
    /// luck. Gated off for single-threaded handles and when coalescing
    /// is disabled, where the yield would be pure overhead.
    fn boarding_window(&self) {
        if self.cfg.coalescing
            && self.cfg.batch_limit > 1
            && self.thread_count.load(Ordering::Relaxed) > 1
        {
            // Under a virtual executor the yield hands the core to peer
            // client tasks at the same virtual instant — the combining
            // window the doorbell+DMA latency provides on hardware.
            clock::yield_now();
        }
    }
}

/// A Flock connection to one remote node (`fl_connect`, paper Table 2).
///
/// The handle owns a set of RC QPs, their rings, TCQs and credit state,
/// plus the response-dispatcher and thread-scheduler threads. Application
/// threads register via [`ConnectionHandle::register_thread`] and interact
/// through the returned [`FlThread`].
pub struct ConnectionHandle {
    inner: Arc<HandleInner>,
    dispatcher: Option<TaskHandle>,
    scheduler: Option<TaskHandle>,
}

/// A per-application-thread handle (cheap to clone is intentionally *not*
/// provided: one `FlThread` per OS thread).
pub struct FlThread {
    ctx: Arc<ThreadCtx>,
    inner: Arc<HandleInner>,
}

impl ConnectionHandle {
    /// Establish a connection to the server listening as `server_name`
    /// (the `fl_connect` API).
    pub fn connect(
        domain: &FlockDomain,
        node: &Arc<Node>,
        server_name: &str,
        cfg: HandleConfig,
    ) -> Result<ConnectionHandle> {
        assert!(cfg.n_qps >= 1);
        assert!(cfg.mem_threads >= 1 && cfg.mem_threads <= MAX_THREADS);
        let ctrl = domain.control(server_name)?;

        // Lease QPs and response rings for the eagerly-created lanes: all
        // of them in eager mode, only lane 0 (the control QP) otherwise.
        let init_lanes = if cfg.eager_qps { cfg.n_qps } else { 1 };
        let mut client_qps = Vec::with_capacity(init_lanes);
        let mut resp_mrs = Vec::with_capacity(init_lanes);
        let mut response_rings = Vec::with_capacity(init_lanes);
        for _ in 0..init_lanes {
            let cq = node.create_cq(256);
            let qp = node.lease_qp(Transport::Rc, &cq, &cq);
            let resp_mr = node.acquire_mr(cfg.ring_capacity, Access::REMOTE_WRITE);
            response_rings.push(RingInfo {
                rkey: resp_mr.rkey(),
                addr: resp_mr.addr(),
                capacity: cfg.ring_capacity,
            });
            resp_mrs.push(resp_mr);
            client_qps.push(qp);
        }

        let (reply_tx, _unused) = bounded(1);
        let reply = domain.dial(
            server_name,
            ConnectRequest {
                client_node: node.id(),
                client_qps: client_qps.clone(),
                response_rings,
                tenant: cfg.tenant,
                reply: reply_tx,
            },
        )?;

        let mut lanes: Vec<OnceLock<Arc<ClientQpCtx>>> = Vec::with_capacity(cfg.n_qps);
        lanes.resize_with(cfg.n_qps, OnceLock::new);
        for (i, (qp, resp_mr)) in client_qps.into_iter().zip(resp_mrs).enumerate() {
            let ctx = build_lane_ctx(
                node,
                &cfg,
                i,
                qp,
                resp_mr,
                reply.request_rings[i],
                reply.initial_credits,
            );
            lanes[i].set(ctx).ok().expect("fresh lane slot");
        }

        let mem_mr = node.acquire_mr(cfg.mem_threads * MEM_SCRATCH, Access::LOCAL);
        let inner = Arc::new(HandleInner {
            node: Arc::clone(node),
            server_node: reply.server_node,
            sender_id: reply.sender_id,
            cfg: cfg.clone(),
            ctrl,
            lanes,
            lane_count: AtomicUsize::new(init_lanes),
            attach_busy: AtomicBool::new(false),
            threads: RwLock::new(Vec::new()),
            thread_count: AtomicUsize::new(0),
            mem_regions: reply.memory_regions,
            mem_mr,
            mem_wr_seq: AtomicU64::new(1),
            mem_cq: cfg.dedicated_mem_qps.then(|| node.create_cq(1024)),
            cost: domain.fabric().config().cost.clone(),
            stop: AtomicBool::new(false),
            released: AtomicBool::new(false),
        });

        let dispatcher = {
            let inner = Arc::clone(&inner);
            clock::spawn("fl-resp-dispatch", move || dispatcher_loop(&inner))
        };
        let scheduler = if cfg.auto_thread_sched {
            let inner = Arc::clone(&inner);
            Some(clock::spawn("fl-thread-sched", move || {
                scheduler_loop(&inner)
            }))
        } else {
            None
        };

        Ok(ConnectionHandle {
            inner,
            dispatcher: Some(dispatcher),
            scheduler,
        })
    }

    /// The sender id the server assigned to this connection.
    pub fn sender_id(&self) -> u32 {
        self.inner.sender_id
    }

    /// Memory regions the server advertised for one-sided operations.
    pub fn memory_regions(&self) -> &[MemRegionInfo] {
        &self.inner.mem_regions
    }

    /// Fetch the server's exported one-sided segment leases
    /// ([`CtrlMsg::Export`]), optionally filtered by exact name.
    ///
    /// One control-plane round trip; the returned leases are
    /// self-contained (slot `i` of a segment lives at
    /// `region.addr + i * stride` under `region.rkey`), so every
    /// subsequent read is a pure one-sided verb with no further
    /// control traffic.
    pub fn fetch_exports(&self, filter: Option<&str>) -> Result<Vec<SegmentLease>> {
        if self.inner.stop.load(Ordering::Relaxed) {
            return Err(FlockError::Disconnected);
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.inner
            .ctrl
            .send(CtrlMsg::Export(ExportRequest {
                filter: filter.map(str::to_string),
                reply: reply_tx,
            }))
            .map_err(|_| FlockError::Disconnected)?;
        await_reply(&reply_rx).map(|r| r.segments)
    }

    /// Register the calling application thread; returns its `FlThread`.
    ///
    /// First use of a not-yet-materialized QP lane happens here: the
    /// thread's round-robin lane (`id % n_qps`) is attached through the
    /// control channel on demand (lazy QP creation — `fl_connect` paid
    /// for one control QP only). If the attach fails, the thread falls
    /// back onto an existing lane instead of failing registration.
    pub fn register_thread(&self) -> FlThread {
        let ctx = {
            let mut threads = self.inner.threads.write();
            let id = threads.len() as u32;
            assert!((id as usize) < MAX_THREADS, "too many registered threads");
            assert!(
                (id as usize) < self.inner.cfg.mem_threads,
                "more threads than cfg.mem_threads scratch slots"
            );
            let ctx = Arc::new(ThreadCtx {
                id,
                next_seq: AtomicU64::new(1),
                outstanding: AtomicU64::new(0),
                current_qp: AtomicUsize::new(0),
                target_qp: AtomicUsize::new(0),
                inbox: Mutex::new(HashMap::new()),
                inbox_cond: Condvar::new(),
                req_sizes: Mutex::new(MedianWindow::new(64)),
                bytes: AtomicU64::new(0),
                reqs: AtomicU64::new(0),
                mem_pending: Mutex::new(HashMap::new()),
                mem_results: Mutex::new(HashMap::new()),
                mem_cond: Condvar::new(),
                mem_free: Mutex::new(0xFF),
                mem_qp: OnceLock::new(),
            });
            threads.push(Arc::clone(&ctx));
            self.inner
                .thread_count
                .store(threads.len(), Ordering::Relaxed);
            ctx
        };
        // Outside the `threads` lock: the attach blocks on a control-plane
        // round trip, and the dispatcher reads `threads` on its hot path.
        let wanted = ctx.id as usize % self.inner.cfg.n_qps;
        let lane = match ensure_lanes(&self.inner, wanted) {
            Ok(()) => wanted,
            Err(_) => ctx.id as usize % self.inner.lane_count.load(Ordering::Acquire).max(1),
        };
        ctx.current_qp.store(lane, Ordering::Relaxed);
        ctx.target_qp.store(lane, Ordering::Relaxed);
        // Dedicated mem QP, best-effort like the lane attach above: a
        // thread that cannot get one falls back to the shared-lane TCQ
        // path for its one-sided ops.
        if self.inner.cfg.dedicated_mem_qps {
            if let Ok(qp) = attach_mem_qp(&self.inner) {
                assert!(ctx.mem_qp.set(qp).is_ok(), "fresh thread ctx");
            }
        }
        FlThread {
            ctx,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of QPs currently marked active by the server's scheduler
    /// (unmaterialized lanes are not active — they do not exist yet).
    pub fn active_qps(&self) -> usize {
        self.inner
            .lanes_live()
            .filter(|q| q.active.load(Ordering::Relaxed))
            .count()
    }

    /// Number of lanes actually materialized so far (≤ `cfg.n_qps`).
    pub fn materialized_qps(&self) -> usize {
        self.inner.lane_count.load(Ordering::Acquire)
    }

    /// Mean coalescing degree observed across this handle's QPs.
    pub fn mean_coalescing_degree(&self) -> f64 {
        let (reqs, msgs) = self.inner.lanes_live().fold((0u64, 0u64), |(r, m), q| {
            (
                r + q.requests_sent.load(Ordering::Relaxed),
                m + q.messages_sent.load(Ordering::Relaxed),
            )
        });
        if msgs == 0 {
            0.0
        } else {
            reqs as f64 / msgs as f64
        }
    }

    /// Snapshot the handle's counters (observability; cheap, lock-light).
    /// `per_qp` always has `cfg.n_qps` entries; lanes not yet
    /// materialized report zeros and `active: false`.
    pub fn metrics(&self) -> HandleMetrics {
        let mut per_qp: Vec<QpMetrics> = self
            .inner
            .lanes_live()
            .map(|q| QpMetrics {
                messages: q.messages_sent.load(Ordering::Relaxed),
                requests: q.requests_sent.load(Ordering::Relaxed),
                credits: q.credits.lock().credits(),
                active: q.active.load(Ordering::Relaxed),
            })
            .collect();
        per_qp.resize(
            self.inner.cfg.n_qps,
            QpMetrics {
                messages: 0,
                requests: 0,
                credits: 0,
                active: false,
            },
        );
        let messages: u64 = per_qp.iter().map(|q| q.messages).sum();
        let requests: u64 = per_qp.iter().map(|q| q.requests).sum();
        HandleMetrics {
            messages,
            requests,
            degree: if messages == 0 {
                0.0
            } else {
                requests as f64 / messages as f64
            },
            active_qps: per_qp.iter().filter(|q| q.active).count(),
            threads: self.inner.threads.read().len(),
            per_qp,
        }
    }

    /// Shut down the handle's background threads.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for qp in self.inner.lanes_live() {
            qp.credit_cond.notify_all();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Gracefully close the connection (`fl_disconnect`).
    ///
    /// Tells the server to quiesce this sender — its QPs leave the
    /// dispatch shards and its AQP share returns to the scheduler —
    /// waits for the acknowledgement, stops the handle's background
    /// tasks, and returns every leased QP and cached MR to the node's
    /// pools. The caller should have drained outstanding requests; any
    /// still in flight are dropped by the QP epoch guard.
    pub fn close(&mut self) -> Result<()> {
        // Graceful detach first, while the dispatcher still runs (the
        // server replies only after its shards stopped touching us).
        let detach = if self.inner.stop.load(Ordering::Relaxed) {
            Err(FlockError::Disconnected)
        } else {
            let (reply_tx, reply_rx) = bounded(1);
            self.inner
                .ctrl
                .send(CtrlMsg::Detach(DetachRequest {
                    sender_id: self.inner.sender_id,
                    reply: reply_tx,
                }))
                .map_err(|_| FlockError::Disconnected)
                .and_then(|()| await_reply(&reply_rx))
        };
        self.shutdown();
        // Recycle: QPs back to the node's pool (reset, not destroyed),
        // rings and scratch back to the MR cache. Guarded so a second
        // `close` cannot double-insert into the pool.
        if !self.inner.released.swap(true, Ordering::AcqRel) {
            for lane in self.inner.lanes_live() {
                self.inner.node.release_qp(&lane.qp);
                self.inner.node.release_mr(&lane.resp_mr);
                self.inner.node.release_mr(&lane.staging);
            }
            for t in self.inner.threads.read().iter() {
                if let Some(qp) = t.mem_qp.get() {
                    self.inner.node.release_qp(qp);
                }
            }
            self.inner.node.release_mr(&self.inner.mem_mr);
        }
        detach
    }
}

impl Drop for ConnectionHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl FlThread {
    /// This thread's id within the handle.
    pub fn id(&self) -> u32 {
        self.ctx.id
    }

    /// The QP this thread currently sends on.
    pub fn current_qp(&self) -> usize {
        self.ctx.current_qp.load(Ordering::Relaxed)
    }

    /// Send an RPC request (`fl_send_rpc`); returns the sequence number to
    /// pass to [`FlThread::recv_res`].
    ///
    /// Copies `payload` once into a shared buffer. Callers that reuse the
    /// same payload (or already hold one as [`Bytes`]) should use
    /// [`FlThread::send_rpc_bytes`], which is copy-free.
    pub fn send_rpc(&self, rpc_id: u32, payload: &[u8]) -> Result<u64> {
        self.send_rpc_bytes(rpc_id, Bytes::copy_from_slice(payload))
    }

    /// Send an RPC request whose payload is already a shared buffer:
    /// the bytes are never copied until the leader encodes them into the
    /// staging ring (cloning `Bytes` is a refcount bump, so resending the
    /// same payload allocates nothing).
    pub fn send_rpc_bytes(&self, rpc_id: u32, payload: Bytes) -> Result<u64> {
        let inner = &self.inner;
        if inner.stop.load(Ordering::Relaxed) {
            return Err(FlockError::Disconnected);
        }
        let qp_idx = self.migrate_if_idle();
        let qp = inner.lane(qp_idx);
        let seq = self.ctx.next_seq.fetch_add(1, Ordering::Relaxed);
        self.ctx.outstanding.fetch_add(1, Ordering::Relaxed);
        self.ctx.req_sizes.lock().record(payload.len() as u32);
        self.ctx
            .bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.ctx.reqs.fetch_add(1, Ordering::Relaxed);

        let meta = EntryMeta {
            len: payload.len() as u32,
            thread_id: self.ctx.id,
            seq,
            rpc_id,
        };
        // TCQ enqueue: one uncontended atomic RMW of host CPU.
        clock::charge(inner.cost.cpu_sync_ns);
        match qp
            .tcq
            .join_with(ClientReq::Rpc(meta, payload), || inner.boarding_window())
        {
            Outcome::Lead(batch) => leader_flush(inner, qp, batch)?,
            Outcome::Sent => {}
        }
        Ok(seq)
    }

    /// Wait for the response to sequence `seq` (`fl_recv_res`).
    ///
    /// The returned [`Bytes`] is a zero-copy slice of the coalesced
    /// response message; it keeps that message's buffer alive until
    /// dropped.
    pub fn recv_res(&self, seq: u64) -> Result<Bytes> {
        if clock::is_virtual() {
            // Poll in virtual time (condvars would park the lab's one
            // runnable OS thread); the lock is dropped across each sleep.
            let deadline = clock::deadline(self.inner.cfg.timeout);
            loop {
                if let Some(data) = self.ctx.inbox.lock().remove(&seq) {
                    self.ctx.outstanding.fetch_sub(1, Ordering::Relaxed);
                    return Ok(data);
                }
                if self.inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return Err(FlockError::Timeout);
                }
                clock::sleep_ns(500);
            }
        }
        let deadline = Instant::now() + self.inner.cfg.timeout;
        let mut inbox = self.ctx.inbox.lock();
        loop {
            if let Some(data) = inbox.remove(&seq) {
                self.ctx.outstanding.fetch_sub(1, Ordering::Relaxed);
                return Ok(data);
            }
            if self.inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if self
                .ctx
                .inbox_cond
                .wait_until(&mut inbox, deadline)
                .timed_out()
            {
                return Err(FlockError::Timeout);
            }
        }
    }

    /// Non-blocking check for the response to `seq` (coroutine-style
    /// pipelining, paper §8.5.2: a thread runs many concurrent
    /// transactions and polls instead of blocking).
    pub fn try_recv_res(&self, seq: u64) -> Option<Bytes> {
        let data = self.ctx.inbox.lock().remove(&seq)?;
        self.ctx.outstanding.fetch_sub(1, Ordering::Relaxed);
        Some(data)
    }

    /// Convenience: send and wait.
    pub fn call(&self, rpc_id: u32, payload: &[u8]) -> Result<Bytes> {
        let seq = self.send_rpc(rpc_id, payload)?;
        self.recv_res(seq)
    }

    /// Convenience: send a shared-buffer payload and wait (copy-free send
    /// path; see [`FlThread::send_rpc_bytes`]).
    pub fn call_bytes(&self, rpc_id: u32, payload: Bytes) -> Result<Bytes> {
        let seq = self.send_rpc_bytes(rpc_id, payload)?;
        self.recv_res(seq)
    }

    /// One-sided read (`fl_read`) from advertised region `mem_idx`.
    pub fn read(&self, mem_idx: usize, offset: u64, len: usize) -> Result<Vec<u8>> {
        let region = self.mem_region(mem_idx)?;
        if len > MEM_SCRATCH {
            return Err(FlockError::MessageTooLarge {
                need: len,
                capacity: MEM_SCRATCH,
            });
        }
        let scratch = self.scratch_off();
        let wr = SendWr::read(
            WrId(0), // assigned in submit_mem
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len,
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
        );
        self.submit_mem(wr, scratch, len)
    }

    /// One-sided write (`fl_write`) into advertised region `mem_idx`.
    pub fn write(&self, mem_idx: usize, offset: u64, data: &[u8]) -> Result<()> {
        let region = self.mem_region(mem_idx)?;
        if data.len() > MEM_SCRATCH {
            return Err(FlockError::MessageTooLarge {
                need: data.len(),
                capacity: MEM_SCRATCH,
            });
        }
        let scratch = self.scratch_off();
        self.inner.mem_mr.write(scratch, data)?;
        let wr = SendWr::write(
            WrId(0),
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len: data.len(),
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
        );
        self.submit_mem(wr, scratch, 0).map(|_| ())
    }

    /// One-sided fetch-and-add (`fl_fetch_and_add`); returns the old value.
    pub fn fetch_add(&self, mem_idx: usize, offset: u64, delta: u64) -> Result<u64> {
        let region = self.mem_region(mem_idx)?;
        let scratch = self.scratch_off();
        let wr = SendWr::fetch_add(
            WrId(0),
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len: 8,
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
            delta,
        );
        let old = self.submit_mem(wr, scratch, 8)?;
        Ok(u64::from_le_bytes(old[..8].try_into().expect("8 bytes")))
    }

    /// One-sided compare-and-swap (`fl_cmp_and_swap`); returns the old
    /// value (the swap happened iff it equals `expect`).
    pub fn cmp_swap(&self, mem_idx: usize, offset: u64, expect: u64, swap: u64) -> Result<u64> {
        let region = self.mem_region(mem_idx)?;
        let scratch = self.scratch_off();
        let wr = SendWr::cmp_swap(
            WrId(0),
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len: 8,
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
            expect,
            swap,
        );
        let old = self.submit_mem(wr, scratch, 8)?;
        Ok(u64::from_le_bytes(old[..8].try_into().expect("8 bytes")))
    }

    fn mem_region(&self, idx: usize) -> Result<MemRegionInfo> {
        self.inner
            .mem_regions
            .get(idx)
            .copied()
            .ok_or(FlockError::RemoteOpFailed("unknown memory region index"))
    }

    fn scratch_off(&self) -> usize {
        self.ctx.id as usize * MEM_SCRATCH
    }

    /// Acquire scratch sub-slots covering `len` bytes. Returns the slot
    /// bitmask and the byte offset within the thread's scratch region, or
    /// `None` if the space is not currently free.
    fn try_acquire_scratch(&self, len: usize) -> Option<(u8, usize)> {
        let mut free = self.ctx.mem_free.lock();
        if len <= MEM_SUBSLOT_SIZE {
            for i in 0..MEM_SUBSLOTS {
                let bit = 1u8 << i;
                if *free & bit != 0 {
                    *free &= !bit;
                    return Some((bit, i * MEM_SUBSLOT_SIZE));
                }
            }
            None
        } else {
            // Large ops take the whole scratch region exclusively.
            if *free == 0xFF {
                *free = 0;
                Some((0xFF, 0))
            } else {
                None
            }
        }
    }

    fn acquire_scratch_blocking(&self, len: usize) -> Result<(u8, usize)> {
        let deadline = clock::deadline(self.inner.cfg.timeout);
        loop {
            if let Some(got) = self.try_acquire_scratch(len) {
                return Ok(got);
            }
            if self.inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if clock::expired(deadline) {
                return Err(FlockError::Timeout);
            }
            clock::yield_now();
        }
    }

    /// Submit a one-sided op through the TCQ without waiting. The `wr`'s
    /// local SGE must point at `scratch_off` within the thread's scratch.
    fn start_mem(
        &self,
        mut wr: SendWr,
        mask: u8,
        scratch_off: usize,
        result_len: usize,
    ) -> Result<MemToken> {
        let wr_seq = self.inner.mem_wr_seq.fetch_add(1, Ordering::Relaxed);
        let wr_id = ((self.ctx.id as u64) << 32) | (wr_seq & 0xFFFF_FFFF);
        wr.wr_id = WrId(wr_id);
        self.ctx.mem_pending.lock().insert(
            wr_id,
            MemPending {
                mask,
                scratch_off,
                result_len,
                defer: false,
            },
        );
        if let Some(mqp) = self.ctx.mem_qp.get() {
            // Dedicated mem QP: the conventional one-sided design pays a
            // verb and a doorbell per op — a per-thread QP has no
            // combining partner.
            if let Err(e) = mqp.post_send(wr) {
                self.ctx.mem_pending.lock().remove(&wr_id);
                *self.ctx.mem_free.lock() |= mask;
                return Err(e.into());
            }
            clock::charge(self.inner.cost.cpu_doorbell_ns);
        } else {
            // Memory ops also coalesce through Flock synchronization (§6):
            // the leader links the batch's work requests into one doorbell.
            let qp_idx = self.migrate_if_idle();
            let qp = self.inner.lane(qp_idx);
            match qp
                .tcq
                .join_with(ClientReq::Mem(wr), || self.inner.boarding_window())
            {
                Outcome::Lead(batch) => leader_flush(&self.inner, qp, batch)?,
                Outcome::Sent => {}
            }
        }
        Ok(MemToken {
            wr_id,
            mask,
            scratch_off,
            len: result_len,
        })
    }

    /// Non-blocking poll of an in-flight one-sided op.
    pub fn try_mem(&self, token: MemToken) -> Option<Result<Vec<u8>>> {
        let r = self.ctx.mem_results.lock().remove(&token.wr_id)?;
        Some(r.map_err(FlockError::RemoteOpFailed))
    }

    /// Block until an in-flight one-sided op completes.
    pub fn wait_mem(&self, token: MemToken) -> Result<Vec<u8>> {
        if clock::is_virtual() {
            // Virtual-time poll; see `recv_res`.
            let deadline = clock::deadline(self.inner.cfg.timeout);
            loop {
                if let Some(r) = self.ctx.mem_results.lock().remove(&token.wr_id) {
                    return r.map_err(FlockError::RemoteOpFailed);
                }
                if self.inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    // Abandon: free the scratch when the completion arrives.
                    return Err(FlockError::Timeout);
                }
                clock::sleep_ns(500);
            }
        }
        let deadline = Instant::now() + self.inner.cfg.timeout;
        let mut results = self.ctx.mem_results.lock();
        loop {
            if let Some(r) = results.remove(&token.wr_id) {
                return r.map_err(FlockError::RemoteOpFailed);
            }
            if self.inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if self
                .ctx
                .mem_cond
                .wait_until(&mut results, deadline)
                .timed_out()
            {
                // Abandon: free the scratch when the completion arrives.
                return Err(FlockError::Timeout);
            }
        }
    }

    /// Start a non-blocking one-sided read of up to one sub-slot
    /// ([`MEM_SUBSLOT_SIZE`] bytes); poll with [`FlThread::try_mem`].
    pub fn read_async(&self, mem_idx: usize, offset: u64, len: usize) -> Result<MemToken> {
        let region = self.mem_region(mem_idx)?;
        if len > MEM_SUBSLOT_SIZE {
            return Err(FlockError::MessageTooLarge {
                need: len,
                capacity: MEM_SUBSLOT_SIZE,
            });
        }
        let (mask, off) = self.acquire_scratch_blocking(len)?;
        let scratch = self.scratch_off() + off;
        let wr = SendWr::read(
            WrId(0),
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len,
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
        );
        self.start_mem(wr, mask, scratch, len)
    }

    /// Start a non-blocking one-sided write of up to one sub-slot.
    pub fn write_async(&self, mem_idx: usize, offset: u64, data: &[u8]) -> Result<MemToken> {
        let region = self.mem_region(mem_idx)?;
        if data.len() > MEM_SUBSLOT_SIZE {
            return Err(FlockError::MessageTooLarge {
                need: data.len(),
                capacity: MEM_SUBSLOT_SIZE,
            });
        }
        let (mask, off) = self.acquire_scratch_blocking(data.len())?;
        let scratch = self.scratch_off() + off;
        self.inner.mem_mr.write(scratch, data)?;
        let wr = SendWr::write(
            WrId(0),
            Sge {
                lkey: self.inner.mem_mr.lkey(),
                addr: self.inner.mem_mr.addr() + scratch as u64,
                len: data.len(),
            },
            RemoteAddr {
                rkey: region.rkey,
                addr: region.addr + offset,
            },
        );
        self.start_mem(wr, mask, scratch, 0)
    }

    /// Issue up to [`MEM_SUBSLOTS`] one-sided READs against raw
    /// [`RemoteAddr`]es as one doorbell-batched chain.
    ///
    /// This is the one-sided fast path: the caller is its own combining
    /// leader, so the work requests bypass the TCQ and go straight to
    /// the lane's QP with `post_send_many` — N verbs, one doorbell
    /// (exactly what `flush_parts` does for TCQ-coalesced memory ops).
    /// Each read lands in its own scratch sub-slot and **stays there**:
    /// the dispatcher publishes only a completion marker, and the bytes
    /// are copied out by [`FlThread::take_deferred`] into a
    /// caller-provided buffer. With a reused `tokens` vector the whole
    /// issue/validate loop allocates nothing in steady state.
    ///
    /// Each read must fit one sub-slot ([`MEM_SUBSLOT_SIZE`] bytes).
    pub fn read_batch(
        &self,
        reads: &[(RemoteAddr, usize)],
        tokens: &mut Vec<MemToken>,
    ) -> Result<()> {
        let n = reads.len();
        if n == 0 {
            return Ok(());
        }
        if n > MEM_SUBSLOTS {
            return Err(FlockError::RemoteOpFailed(
                "read batch exceeds scratch sub-slots",
            ));
        }
        let mut masks = [0u8; MEM_SUBSLOTS];
        let mut offs = [0usize; MEM_SUBSLOTS];
        for (i, &(_, len)) in reads.iter().enumerate() {
            let got = if len > MEM_SUBSLOT_SIZE {
                Err(FlockError::MessageTooLarge {
                    need: len,
                    capacity: MEM_SUBSLOT_SIZE,
                })
            } else {
                self.acquire_scratch_blocking(len)
            };
            match got {
                Ok((m, o)) => {
                    masks[i] = m;
                    offs[i] = o;
                }
                Err(e) => {
                    let mut free = self.ctx.mem_free.lock();
                    for &m in &masks[..i] {
                        *free |= m;
                    }
                    return Err(e);
                }
            }
        }
        // Dedicated mem QP when configured; otherwise the thread's shared
        // RPC lane, whose doorbell the chain shares with coalesced traffic.
        let lane;
        let post_qp: &Arc<Qp> = match self.ctx.mem_qp.get() {
            Some(q) => q,
            None => {
                lane = self.inner.lane(self.migrate_if_idle());
                &lane.qp
            }
        };
        let base_seq = self.inner.mem_wr_seq.fetch_add(n as u64, Ordering::Relaxed);
        // Fixed-size WR chain on the stack; indices past `n` duplicate
        // the last real read and are never posted.
        let wrs: [SendWr; MEM_SUBSLOTS] = std::array::from_fn(|i| {
            let j = i.min(n - 1);
            let wr_id = ((self.ctx.id as u64) << 32) | ((base_seq + j as u64) & 0xFFFF_FFFF);
            let scratch = self.scratch_off() + offs[j];
            SendWr::read(
                WrId(wr_id),
                Sge {
                    lkey: self.inner.mem_mr.lkey(),
                    addr: self.inner.mem_mr.addr() + scratch as u64,
                    len: reads[j].1,
                },
                reads[j].0,
            )
        });
        {
            let mut pending = self.ctx.mem_pending.lock();
            for i in 0..n {
                pending.insert(
                    wrs[i].wr_id.0,
                    MemPending {
                        mask: masks[i],
                        scratch_off: self.scratch_off() + offs[i],
                        result_len: reads[i].1,
                        defer: true,
                    },
                );
            }
        }
        if let Err(e) = post_qp.post_send_many(&wrs[..n]) {
            let mut pending = self.ctx.mem_pending.lock();
            for wr in &wrs[..n] {
                pending.remove(&wr.wr_id.0);
            }
            drop(pending);
            let mut free = self.ctx.mem_free.lock();
            for &m in &masks[..n] {
                *free |= m;
            }
            return Err(e.into());
        }
        clock::charge(self.inner.cost.cpu_doorbell_ns);
        for (i, wr) in wrs[..n].iter().enumerate() {
            tokens.push(MemToken {
                wr_id: wr.wr_id.0,
                mask: masks[i],
                scratch_off: self.scratch_off() + offs[i],
                len: reads[i].1,
            });
        }
        Ok(())
    }

    /// Copy a deferred read's bytes out of the scratch MR into `out`
    /// (no allocation) and release its sub-slot. Blocks until the
    /// completion arrives; returns the number of bytes copied.
    pub fn take_deferred(&self, token: MemToken, out: &mut [u8]) -> Result<usize> {
        match self.wait_marker(token)? {
            Ok(()) => {
                let n = token.len.min(out.len());
                let copied = self.inner.mem_mr.read(token.scratch_off, &mut out[..n]);
                *self.ctx.mem_free.lock() |= token.mask;
                copied.map_err(|_| FlockError::RemoteOpFailed("scratch read failed"))?;
                Ok(n)
            }
            Err(e) => {
                *self.ctx.mem_free.lock() |= token.mask;
                Err(FlockError::RemoteOpFailed(e))
            }
        }
    }

    /// Block until a deferred op's completion marker is published.
    /// Outer `Err` is a local failure (timeout/disconnect); the inner
    /// result is the remote completion status.
    fn wait_marker(&self, token: MemToken) -> Result<std::result::Result<(), &'static str>> {
        if clock::is_virtual() {
            // Virtual-time poll; see `recv_res`.
            let deadline = clock::deadline(self.inner.cfg.timeout);
            loop {
                if let Some(r) = self.ctx.mem_results.lock().remove(&token.wr_id) {
                    return Ok(r.map(|_| ()));
                }
                if self.inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return self.abandon_deferred(token);
                }
                clock::sleep_ns(500);
            }
        }
        let deadline = Instant::now() + self.inner.cfg.timeout;
        let mut results = self.ctx.mem_results.lock();
        loop {
            if let Some(r) = results.remove(&token.wr_id) {
                return Ok(r.map(|_| ()));
            }
            if self.inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if self
                .ctx
                .mem_cond
                .wait_until(&mut results, deadline)
                .timed_out()
            {
                drop(results);
                return self.abandon_deferred(token);
            }
        }
    }

    /// Deadline hit on a deferred op: downgrade its pending entry so
    /// the late completion releases the scratch itself — unless the
    /// completion landed between the last poll and now, in which case
    /// consume it as a success.
    fn abandon_deferred(&self, token: MemToken) -> Result<std::result::Result<(), &'static str>> {
        let mut pending = self.ctx.mem_pending.lock();
        if let Some(p) = pending.get_mut(&token.wr_id) {
            p.defer = false;
            p.result_len = 0;
            return Err(FlockError::Timeout);
        }
        drop(pending);
        match self.ctx.mem_results.lock().remove(&token.wr_id) {
            Some(r) => Ok(r.map(|_| ())),
            None => Err(FlockError::Timeout),
        }
    }

    /// Submit a one-sided op through the TCQ and wait for its completion.
    fn submit_mem(&self, wr: SendWr, _scratch_off: usize, result_len: usize) -> Result<Vec<u8>> {
        // `wr` was built against the start of the thread's scratch region;
        // blocking ops take the whole region so the layout is unchanged.
        let len = wr.op.byte_len();
        let (mask, off) = self.acquire_scratch_blocking(len.max(MEM_SCRATCH - 1))?;
        debug_assert_eq!((mask, off), (0xFF, 0));
        let token = self.start_mem(wr, mask, self.scratch_off(), result_len)?;
        self.wait_mem(token)
    }

    /// Adopt the scheduler's target QP if no requests are outstanding
    /// (migration safety, §5.2).
    fn migrate_if_idle(&self) -> usize {
        let current = self.ctx.current_qp.load(Ordering::Relaxed);
        let target = self.ctx.target_qp.load(Ordering::Relaxed);
        if target != current && self.ctx.outstanding.load(Ordering::Relaxed) == 0 {
            self.ctx.current_qp.store(target, Ordering::Relaxed);
            return target;
        }
        current
    }
}

/// Build one lane's client-side context around a leased QP and its
/// cached-MR rings.
fn build_lane_ctx(
    node: &Arc<Node>,
    cfg: &HandleConfig,
    index: usize,
    qp: Arc<Qp>,
    resp_mr: Arc<MemoryRegion>,
    req_remote: RingInfo,
    initial_credits: u32,
) -> Arc<ClientQpCtx> {
    let batch_limit = if cfg.coalescing { cfg.batch_limit } else { 1 };
    let staging = node.acquire_mr(cfg.ring_capacity, Access::LOCAL);
    Arc::new(ClientQpCtx {
        index,
        qp,
        tcq: Tcq::new(batch_limit),
        req_prod: Mutex::new(RingProducer::new(RingLayout::new(0, req_remote.capacity))),
        req_remote,
        staging,
        server_head: AtomicU64::new(0),
        resp_mr,
        resp_cons: Mutex::new(RingConsumer::new(RingLayout::new(0, cfg.ring_capacity))),
        resp_head_shared: AtomicU64::new(0),
        credits: Mutex::new(CreditState::new(initial_credits)),
        credit_cond: Condvar::new(),
        degree: Mutex::new(MedianWindow::new(64)),
        active: AtomicBool::new(true),
        canary_seq: AtomicU64::new(0),
        write_count: AtomicU64::new(0),
        messages_sent: AtomicU64::new(0),
        requests_sent: AtomicU64::new(0),
    })
}

/// Materialize lanes up to and including `want_idx` (clamped to
/// `n_qps - 1`). Lanes attach densely in index order; concurrent callers
/// single-flight through `attach_busy`, spinning via the clock seam
/// rather than holding a lock across the control-plane round trip.
fn ensure_lanes(inner: &Arc<HandleInner>, want_idx: usize) -> Result<()> {
    let want = (want_idx + 1).min(inner.cfg.n_qps);
    loop {
        if inner.lane_count.load(Ordering::Acquire) >= want {
            return Ok(());
        }
        if inner.stop.load(Ordering::Relaxed) {
            return Err(FlockError::Disconnected);
        }
        if inner
            .attach_busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            let mut result = Ok(());
            while inner.lane_count.load(Ordering::Relaxed) < want {
                result = attach_one_lane(inner);
                if result.is_err() {
                    break;
                }
            }
            inner.attach_busy.store(false, Ordering::Release);
            return result;
        }
        clock::yield_now();
    }
}

/// Attach the next lane: lease a QP and a cached response ring locally,
/// round-trip the control channel, and publish the materialized lane.
/// Caller holds the `attach_busy` single-flight flag.
fn attach_one_lane(inner: &Arc<HandleInner>) -> Result<()> {
    let idx = inner.lane_count.load(Ordering::Relaxed);
    let cq = inner.node.create_cq(256);
    let qp = inner.node.lease_qp(Transport::Rc, &cq, &cq);
    let resp_mr = inner.node.acquire_mr(inner.cfg.ring_capacity, Access::REMOTE_WRITE);
    let (reply_tx, reply_rx) = bounded(1);
    let sent = inner
        .ctrl
        .send(CtrlMsg::Attach(AttachRequest {
            sender_id: inner.sender_id,
            lane: idx,
            client_qp: Arc::clone(&qp),
            response_ring: RingInfo {
                rkey: resp_mr.rkey(),
                addr: resp_mr.addr(),
                capacity: inner.cfg.ring_capacity,
            },
            reply: reply_tx,
        }))
        .map_err(|_| FlockError::Disconnected)
        .and_then(|()| await_reply(&reply_rx));
    let reply = match sent {
        Ok(r) => r,
        Err(e) => {
            // The lane never went live: recycle its resources.
            inner.node.release_qp(&qp);
            inner.node.release_mr(&resp_mr);
            return Err(e);
        }
    };
    let ctx = build_lane_ctx(
        &inner.node,
        &inner.cfg,
        idx,
        qp,
        resp_mr,
        reply.request_ring,
        reply.initial_credits,
    );
    inner.lanes[idx].set(ctx).ok().expect("attach single-flight");
    inner.lane_count.store(idx + 1, Ordering::Release);
    Ok(())
}

/// Lease a dedicated per-thread one-sided QP and pair it with the
/// server (`CtrlMsg::AttachMem`): one control-plane round trip per
/// registered thread. All mem QPs share the handle's `mem_cq`, so the
/// dispatcher gains one poll point, not one per thread.
fn attach_mem_qp(inner: &Arc<HandleInner>) -> Result<Arc<Qp>> {
    let cq = inner.mem_cq.as_ref().expect("mem CQ exists when dedicated_mem_qps");
    let qp = inner.node.lease_qp(Transport::Rc, cq, cq);
    let (reply_tx, reply_rx) = bounded(1);
    let sent = inner
        .ctrl
        .send(CtrlMsg::AttachMem(AttachMemRequest {
            sender_id: inner.sender_id,
            client_qp: Arc::clone(&qp),
            reply: reply_tx,
        }))
        .map_err(|_| FlockError::Disconnected)
        .and_then(|()| await_reply(&reply_rx));
    match sent {
        Ok(_reply) => Ok(qp),
        Err(e) => {
            inner.node.release_qp(&qp);
            Err(e)
        }
    }
}

/// Leader-side flush scratch, reused across batches by each thread: any
/// thread can transiently become a leader, and recycling these buffers
/// (plus the TCQ's pooled batch scratch) keeps the steady-state flush
/// allocation-free.
#[derive(Default)]
struct FlushScratch {
    rpcs: Vec<(EntryMeta, Bytes)>,
    mem_wrs: Vec<SendWr>,
}

thread_local! {
    static FLUSH_SCRATCH: RefCell<FlushScratch> = RefCell::new(FlushScratch::default());
}

/// The leader's flush: partition the batch, post one-sided work requests,
/// encode the coalesced RPC message, manage credits and ring space, and
/// issue the RDMA write(s) (paper §4.2, Figure 5).
fn leader_flush(
    inner: &HandleInner,
    qp: &ClientQpCtx,
    mut batch: crate::tcq::Batch<ClientReq>,
) -> Result<()> {
    let result = FLUSH_SCRATCH
        .try_with(|cell| flush_batch(inner, qp, &mut batch, &mut cell.borrow_mut()))
        // TLS destructor already ran (thread teardown): fall back to
        // fresh buffers rather than abandoning the batch.
        .unwrap_or_else(|_| flush_batch(inner, qp, &mut batch, &mut FlushScratch::default()));
    // Always release followers, even on error: stranding them would
    // deadlock unrelated threads. Their requests time out instead.
    qp.tcq.complete(batch);
    result
}

fn flush_batch(
    inner: &HandleInner,
    qp: &ClientQpCtx,
    batch: &mut crate::tcq::Batch<ClientReq>,
    scratch: &mut FlushScratch,
) -> Result<()> {
    scratch.rpcs.clear();
    scratch.mem_wrs.clear();
    // Drain in place: the batch keeps its (pooled) buffers for
    // `Tcq::complete` to recycle, and the payload `Bytes` move without
    // copying.
    for item in batch.drain_items() {
        match item {
            ClientReq::Rpc(meta, data) => scratch.rpcs.push((meta, data)),
            ClientReq::Mem(wr) => scratch.mem_wrs.push(wr),
        }
    }
    let result = flush_parts(inner, qp, &scratch.rpcs, &scratch.mem_wrs);
    // Drop payload refcounts promptly (the encode into staging is done);
    // the buffers themselves are retained for the next batch.
    scratch.rpcs.clear();
    scratch.mem_wrs.clear();
    result
}

fn flush_parts(
    inner: &HandleInner,
    qp: &ClientQpCtx,
    rpcs: &[(EntryMeta, Bytes)],
    mem_wrs: &[SendWr],
) -> Result<()> {
    // One-sided ops are linked into a single chain and posted with one
    // doorbell by the leader (paper §6).
    if !mem_wrs.is_empty() {
        qp.qp.post_send_many(mem_wrs)?;
        clock::charge(inner.cost.cpu_doorbell_ns);
    }
    if rpcs.is_empty() {
        return Ok(());
    }
    let degree = rpcs.len() as u32;
    qp.degree.lock().record(degree);

    wait_for_credits(inner, qp, degree)?;

    let need = msg::encoded_size(rpcs.iter().map(|(_, d)| d.len()));
    let canary = qp.next_canary();
    let header = MsgHeader {
        total_len: 0,
        count: 0,
        flags: 0,
        canary,
        head: qp.resp_head_shared.load(Ordering::Acquire),
        aux: 0,
    };

    // Reserve ring space, refreshing the cached server head while full.
    let deadline = clock::deadline(inner.cfg.timeout);
    let reservation = loop {
        let mut prod = qp.req_prod.lock();
        prod.update_head(qp.server_head.load(Ordering::Acquire));
        match prod.reserve(need) {
            Ok(r) => break r,
            Err(FlockError::RingFull { .. }) => {
                drop(prod);
                if inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return Err(FlockError::Timeout);
                }
                clock::yield_now();
            }
            Err(e) => return Err(e),
        }
    };

    // Stage and post the wrap record first, if needed (written directly
    // into the staging mirror: no temporary buffer).
    if let Some((woff, wlen)) = reservation.wrap {
        qp.staging
            .with_write(|buf| RingProducer::write_wrap_record(&mut buf[woff..woff + wlen], canary));
        qp.qp.post_send(
            SendWr::write(
                WrId(0),
                Sge {
                    lkey: qp.staging.lkey(),
                    addr: qp.staging.addr() + woff as u64,
                    len: wlen,
                },
                RemoteAddr {
                    rkey: qp.req_remote.rkey,
                    addr: qp.req_remote.addr + woff as u64,
                },
            )
            .unsignaled(),
        )?;
    }

    // Encode the coalesced message into the staging mirror, straight from
    // the scratch pairs (no intermediate `Vec<EntryRef>`).
    qp.staging.with_write(|buf| {
        msg::encode_iter(
            &mut buf[reservation.offset..reservation.offset + need],
            &header,
            rpcs.iter()
                .map(|(meta, data)| EntryRef { meta: *meta, data }),
        )
        .map(|_| ())
    })?;

    // One RDMA write, one doorbell for the whole batch. Selective
    // signaling: only every Nth write generates a completion.
    let n = qp.write_count.fetch_add(1, Ordering::Relaxed);
    let mut wr = SendWr::write(
        WrId(u64::MAX), // distinguishes plain ring writes in the CQ
        Sge {
            lkey: qp.staging.lkey(),
            addr: qp.staging.addr() + reservation.offset as u64,
            len: need,
        },
        RemoteAddr {
            rkey: qp.req_remote.rkey,
            addr: qp.req_remote.addr + reservation.offset as u64,
        },
    );
    if !n.is_multiple_of(inner.cfg.signal_every) {
        wr = wr.unsignaled();
    }
    qp.qp.post_send(wr)?;
    // Leader's host cost: encode each entry, stage the message, ring the
    // doorbell — amortized over the whole batch (the coalescing win).
    clock::charge(
        inner.cost.cpu_doorbell_ns
            + inner.cost.memcpy_time(need).as_nanos()
            + inner.cost.cpu_codec_ns * degree as u64,
    );
    qp.messages_sent.fetch_add(1, Ordering::Relaxed);
    qp.requests_sent.fetch_add(degree as u64, Ordering::Relaxed);
    Ok(())
}

/// Consume `n` credits, requesting renewal when at half (paper §5.1).
fn wait_for_credits(inner: &HandleInner, qp: &ClientQpCtx, n: u32) -> Result<()> {
    let deadline = Instant::now() + inner.cfg.timeout;
    let vdeadline = clock::deadline(inner.cfg.timeout);
    loop {
        let mut send_renewal = false;
        {
            let mut credits = qp.credits.lock();
            if !qp.active.load(Ordering::Acquire) {
                // Deactivated QP: drain without credits; threads migrate
                // away for future requests.
                break;
            }
            let consumed = credits.try_consume(n);
            if credits.should_request_renewal() {
                credits.mark_requested();
                send_renewal = true;
            }
            if consumed {
                if send_renewal {
                    drop(credits);
                    send_credit_request(qp)?;
                }
                return Ok(());
            }
            if !send_renewal {
                if inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::is_virtual() {
                    // Virtual-time poll for the grant instead of a condvar
                    // park (which would stall the serialized lab).
                    drop(credits);
                    if clock::expired(vdeadline) {
                        return Err(FlockError::Timeout);
                    }
                    clock::sleep_ns(1_000);
                    continue;
                }
                if qp
                    .credit_cond
                    .wait_until(&mut credits, deadline)
                    .timed_out()
                {
                    return Err(FlockError::Timeout);
                }
                continue;
            }
        }
        send_credit_request(qp)?;
    }
    Ok(())
}

/// Post the credit renewal as RDMA write-with-imm (paper §7): the imm word
/// carries the QP index and the median coalescing degree since the last
/// renewal.
fn send_credit_request(qp: &ClientQpCtx) -> Result<()> {
    let median = {
        let mut w = qp.degree.lock();
        let m = w.median().clamp(1, u16::MAX as u32) as u16;
        w.clear();
        m
    };
    let imm = ((qp.index as u32) << 16) | median as u32;
    qp.qp.post_send(
        SendWr::write_imm(
            WrId(u64::MAX - 1),
            Sge {
                lkey: qp.staging.lkey(),
                addr: qp.staging.addr(),
                len: 0,
            },
            RemoteAddr {
                rkey: qp.req_remote.rkey,
                addr: qp.req_remote.addr,
            },
            imm,
        )
        .unsignaled(),
    )?;
    Ok(())
}

/// The response dispatcher (paper §4.3): polls every QP's response ring,
/// routes entries to threads by thread id, folds in piggybacked heads and
/// credit grants, and routes one-sided completions.
fn dispatcher_loop(inner: &HandleInner) {
    // Send-CQ drain scratch: batched poll, one sync edge per sweep.
    let mut drained: Vec<flock_fabric::Completion> = Vec::new();
    // Polling core in the lab: see the matching cap in the server's
    // dispatch_loop for why the virtual ladder stays tight.
    let mut idler =
        flock_sync::AdaptiveBackoff::new(Duration::from_micros(100)).with_virtual_cap(1_000);
    while !inner.stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        for qp in inner.lanes_live() {
            // Send-CQ: one-sided completions and (rare) ring-write errors.
            drained.clear();
            if qp.qp.send_cq().poll(&mut drained, usize::MAX) > 0 {
                progressed = true;
                clock::charge(inner.cost.cpu_poll_cqe_ns * drained.len() as u64);
                for c in &drained {
                    route_completion(inner, c);
                }
            }
            // Response ring.
            let polled = { qp.resp_cons.lock().poll(&qp.resp_mr) };
            handle_ring_poll(inner, qp, polled, &mut progressed);
        }
        // Dedicated mem QPs share one send CQ; their one-sided
        // completions route exactly like the lanes' do.
        if let Some(cq) = &inner.mem_cq {
            drained.clear();
            if cq.poll(&mut drained, usize::MAX) > 0 {
                progressed = true;
                clock::charge(inner.cost.cpu_poll_cqe_ns * drained.len() as u64);
                for c in &drained {
                    route_completion(inner, c);
                }
            }
        }
        if progressed {
            idler.reset();
            // Apply accrued virtual CPU cost on busy sweeps, which never
            // reach `idle()` (see the server dispatcher).
            clock::flush_charge();
        } else {
            idler.idle();
        }
    }
    // Wake any waiting threads so they observe the stop flag.
    for t in inner.threads.read().iter() {
        t.inbox_cond.notify_all();
        t.mem_cond.notify_all();
    }
}

/// Fold one lane's response-ring poll result into the dispatcher sweep:
/// piggybacked heads, credit grants, and per-thread response routing.
fn handle_ring_poll(
    inner: &HandleInner,
    qp: &ClientQpCtx,
    polled: Result<Option<crate::ring::OwnedMsg>>,
    progressed: &mut bool,
) {
    match polled {
        Ok(Some(m)) => {
            *progressed = true;
            clock::charge(inner.cost.cpu_ring_poll_ns);
            let head_after = { qp.resp_cons.lock().head() };
            qp.resp_head_shared.store(head_after, Ordering::Release);
            let view = m.view();
            let h = view.header;
            qp.server_head.fetch_max(h.head, Ordering::AcqRel);
            if h.flags & FLAG_CREDIT_GRANT != 0 {
                let (granted, _) = msg::unpack_aux(h.aux);
                let mut credits = qp.credits.lock();
                if granted == 0 {
                    credits.decline();
                    qp.active.store(false, Ordering::Release);
                } else {
                    credits.grant(granted);
                    qp.active.store(true, Ordering::Release);
                }
                qp.credit_cond.notify_all();
            }
            let threads = inner.threads.read();
            for (meta, range) in view.entry_ranges() {
                clock::charge(inner.cost.cpu_codec_ns);
                if let Some(t) = threads.get(meta.thread_id as usize) {
                    // Zero-copy: each response entry is a slice of
                    // the shared coalesced-message buffer; the one
                    // copy out of the ring happened in `poll`.
                    t.inbox.lock().insert(meta.seq, m.bytes().slice(range));
                    t.inbox_cond.notify_all();
                }
            }
        }
        Ok(None) => {
            clock::charge(inner.cost.cpu_poll_empty_ns);
        }
        Err(_) => {
            // Corrupt ring: fatal for this connection.
            inner.stop.store(true, Ordering::SeqCst);
        }
    }
}

fn route_completion(inner: &HandleInner, c: &flock_fabric::Completion) {
    // Ring writes use sentinel wr_ids; one-sided ops encode the thread id.
    if c.wr_id.0 == u64::MAX || c.wr_id.0 == u64::MAX - 1 {
        return; // signaled ring write or credit imm; errors surface below
    }
    if !matches!(
        c.opcode,
        CqOpcode::Read | CqOpcode::Write | CqOpcode::Atomic
    ) {
        return;
    }
    let thread_id = (c.wr_id.0 >> 32) as u32;
    let threads = inner.threads.read();
    let Some(t) = threads.get(thread_id as usize) else {
        return;
    };
    let Some(p) = t.mem_pending.lock().remove(&c.wr_id.0) else {
        return; // stale completion from a timed-out, abandoned op
    };
    let result = if c.is_ok() {
        if p.defer {
            // Deferred op: publish only a marker. The payload stays in
            // scratch until the issuing thread copies it out with
            // `take_deferred` — no allocation on this path.
            Ok(Vec::new())
        } else if p.result_len > 0 {
            inner
                .mem_mr
                .read_vec(p.scratch_off, p.result_len)
                .map_err(|_| "scratch read failed")
        } else {
            Ok(Vec::new())
        }
    } else {
        Err("remote operation completed with error status")
    };
    // Release the scratch sub-slots, then publish the result. Deferred
    // ops keep their sub-slots until `take_deferred` consumes the bytes.
    if !p.defer {
        *t.mem_free.lock() |= p.mask;
    }
    t.mem_results.lock().insert(c.wr_id.0, result);
    t.mem_cond.notify_all();
}

/// Sender-side thread scheduler loop (paper §5.2, Algorithm 1).
fn scheduler_loop(inner: &HandleInner) {
    while !inner.stop.load(Ordering::Relaxed) {
        clock::sleep(inner.cfg.sched_interval);
        run_thread_scheduling(inner);
    }
}

/// One scheduling pass; factored out for tests and ablations.
pub(crate) fn run_thread_scheduling(inner: &HandleInner) {
    let active: Vec<usize> = inner
        .lanes_live()
        .filter(|q| q.active.load(Ordering::Relaxed))
        .map(|q| q.index)
        .collect();
    let active = if active.is_empty() { vec![0] } else { active };
    let threads = inner.threads.read();
    if threads.is_empty() {
        return;
    }
    let stats: Vec<ThreadLoadStats> = threads
        .iter()
        .map(|t| ThreadLoadStats {
            thread_id: t.id,
            median_req_size: t.req_sizes.lock().median(),
            requests: t.reqs.swap(0, Ordering::Relaxed),
            bytes: t.bytes.swap(0, Ordering::Relaxed),
        })
        .collect();
    for (tid, rank) in assign_threads(&stats, active.len()) {
        if let Some(t) = threads.get(tid as usize) {
            t.target_qp.store(active[rank], Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_config_defaults_are_sane() {
        let cfg = HandleConfig::default();
        assert!(cfg.n_qps >= 1);
        assert!(cfg.ring_capacity % 64 == 0);
        assert!(cfg.coalescing);
    }
}
