//! Connection bootstrap: the out-of-band control plane.
//!
//! Real RDMA deployments exchange QP numbers, rkeys and ring addresses over
//! TCP (or RDMA CM) before the first verb is posted. In this in-process
//! reproduction the control plane is a name registry plus a channel-based
//! request/reply handshake — it carries exactly the information a TCP
//! bootstrap would.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use flock_fabric::{Fabric, FabricConfig, Node, NodeId, Qp, QpNum, Rkey};
use flock_sync::AdaptiveBackoff;
use parking_lot::Mutex;

use crate::error::{FlockError, Result};

/// Geometry of one ring buffer exposed to the peer.
#[derive(Debug, Clone, Copy)]
pub struct RingInfo {
    /// Remote key of the memory region backing the ring.
    pub rkey: Rkey,
    /// Virtual address of the ring's first byte.
    pub addr: u64,
    /// Ring capacity in bytes.
    pub capacity: usize,
}

/// A server memory region advertised for one-sided operations
/// (`fl_attach_mreg`, paper Table 2).
#[derive(Debug, Clone, Copy)]
pub struct MemRegionInfo {
    /// Remote key.
    pub rkey: Rkey,
    /// Base virtual address.
    pub addr: u64,
    /// Length in bytes.
    pub len: usize,
}

/// Connection request sent by a client to a listening server.
pub struct ConnectRequest {
    /// The client's node id.
    pub client_node: NodeId,
    /// The client's QPs, one per connection-handle lane.
    pub client_qps: Vec<Arc<Qp>>,
    /// Response rings on the client, one per QP (server writes here).
    pub response_rings: Vec<RingInfo>,
    /// Tenant this connection acts for (gateway topology; 0 is the
    /// default tenant). The server groups senders by tenant for AQP
    /// share caps and per-tenant accounting.
    pub tenant: u32,
    /// Channel for the server's reply.
    pub reply: Sender<Result<ConnectReply>>,
}

/// Server's reply to a [`ConnectRequest`].
#[derive(Debug, Clone)]
pub struct ConnectReply {
    /// The server's node id.
    pub server_node: NodeId,
    /// The server's QP numbers paired 1:1 with the client's QPs.
    pub server_qps: Vec<QpNum>,
    /// Request rings on the server, one per QP (client writes here).
    pub request_rings: Vec<RingInfo>,
    /// Memory regions advertised for one-sided operations.
    pub memory_regions: Vec<MemRegionInfo>,
    /// Bootstrap credits per QP.
    pub initial_credits: u32,
    /// The sender id the server assigned to this client.
    pub sender_id: u32,
}

/// Request to materialize one additional data lane on an existing
/// connection (lazy QP creation: `fl_connect` came back after a single
/// control QP; the remaining lanes attach on first use).
pub struct AttachRequest {
    /// The sender id the server assigned at connect time.
    pub sender_id: u32,
    /// The lane index being materialized (dense, `1..n_qps`).
    pub lane: usize,
    /// The client's freshly leased QP for this lane.
    pub client_qp: Arc<Qp>,
    /// Response ring on the client for this lane.
    pub response_ring: RingInfo,
    /// Channel for the server's reply.
    pub reply: Sender<Result<AttachReply>>,
}

/// Server's reply to an [`AttachRequest`].
#[derive(Debug, Clone)]
pub struct AttachReply {
    /// The server QP paired with the new client lane.
    pub server_qp: QpNum,
    /// Request ring on the server for this lane.
    pub request_ring: RingInfo,
    /// Bootstrap credits for the lane.
    pub initial_credits: u32,
}

/// Request to pair a dedicated one-sided ("mem") QP with a live
/// connection — the conventional FaRM/HERD-style per-thread QP design,
/// used as the one-sided baseline in the crossover experiments. The
/// server leases a passive peer QP and connects the pair; mem QPs carry
/// only one-sided verbs, join no dispatch shard and no QP-scheduler
/// sender, and are released in one batch at detach. That uncoordinated
/// per-client NIC state is exactly what the paper's RPC design
/// amortizes away (§2).
pub struct AttachMemRequest {
    /// The sender id the server assigned at connect time.
    pub sender_id: u32,
    /// The client's freshly leased per-thread QP.
    pub client_qp: Arc<Qp>,
    /// Channel for the server's reply.
    pub reply: Sender<Result<AttachMemReply>>,
}

/// Server's reply to an [`AttachMemRequest`].
#[derive(Debug, Clone)]
pub struct AttachMemReply {
    /// The passive server QP paired with the client's mem QP.
    pub server_qp: QpNum,
}

/// A named, exported slice of server memory a client may read with
/// one-sided verbs: `slots` fixed-`stride` records starting at
/// `region.addr`. The lease is self-contained — a client computes the
/// [`flock_fabric::RemoteAddr`] of slot `i` as
/// `region.addr + i * stride` with `region.rkey`, with no further
/// control-plane traffic per read.
#[derive(Debug, Clone)]
pub struct SegmentLease {
    /// Export name chosen by the server (e.g. `"kv-values"`).
    pub name: String,
    /// The backing memory region (rkey, base address, length).
    pub region: MemRegionInfo,
    /// Bytes per slot.
    pub stride: u32,
    /// Number of slots.
    pub slots: u32,
    /// Layout-specific metadata the exporter wants the reader to know
    /// (e.g. the value capacity inside a versioned slot).
    pub meta: u64,
}

/// Request for the server's exported one-sided segments.
pub struct ExportRequest {
    /// If set, only segments whose name matches exactly are returned.
    pub filter: Option<String>,
    /// Channel for the server's reply.
    pub reply: Sender<Result<ExportReply>>,
}

/// Server's reply to an [`ExportRequest`].
#[derive(Debug, Clone)]
pub struct ExportReply {
    /// The matching segment leases, in registration order.
    pub segments: Vec<SegmentLease>,
}

/// Request to gracefully tear a connection down. The server quiesces
/// the departing sender's QPs out of its dispatch shards before
/// replying, so the client can recycle its resources immediately.
pub struct DetachRequest {
    /// The sender id being detached.
    pub sender_id: u32,
    /// Channel for the server's acknowledgement.
    pub reply: Sender<Result<()>>,
}

/// A control-plane message carried over a server's listener channel.
///
/// Real deployments multiplex connection setup, lane attach, and
/// teardown over one out-of-band TCP session; this enum is that
/// session's wire format.
pub enum CtrlMsg {
    /// Full connection handshake.
    Connect(ConnectRequest),
    /// Materialize one more data lane on a live connection.
    Attach(AttachRequest),
    /// Pair a dedicated one-sided QP with a live connection.
    AttachMem(AttachMemRequest),
    /// Graceful teardown of a live connection.
    Detach(DetachRequest),
    /// Fetch the server's exported one-sided segment leases.
    Export(ExportRequest),
}

/// The in-process "datacenter": a fabric plus a server name registry.
pub struct FlockDomain {
    fabric: Fabric,
    listeners: Mutex<HashMap<String, Sender<CtrlMsg>>>,
}

impl FlockDomain {
    /// Create a domain over a fabric with the given configuration.
    pub fn new(config: FabricConfig) -> FlockDomain {
        FlockDomain {
            fabric: Fabric::new(config),
            listeners: Mutex::new(HashMap::new()),
        }
    }

    /// Create a domain with default fabric configuration.
    pub fn with_defaults() -> FlockDomain {
        FlockDomain::new(FabricConfig::default())
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Attach a new machine to the domain.
    pub fn add_node(&self, name: &str) -> Arc<Node> {
        self.fabric.add_node(name)
    }

    /// Register a listening server under `name`. Returns the receive side
    /// via the provided channel capacity.
    pub(crate) fn register_listener(&self, name: &str, tx: Sender<CtrlMsg>) {
        self.listeners.lock().insert(name.to_string(), tx);
    }

    /// Remove a listener (server shutdown).
    pub(crate) fn unregister_listener(&self, name: &str) {
        self.listeners.lock().remove(name);
    }

    /// Look up the control channel of the named server. Clients hold on
    /// to this for the lifetime of a connection so later attach/detach
    /// messages skip the registry.
    pub(crate) fn control(&self, name: &str) -> Result<Sender<CtrlMsg>> {
        self.listeners
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| FlockError::UnknownRemote(name.to_string()))
    }

    /// Send a connection request to the named server and await the reply.
    ///
    /// Public so alternative clients (e.g., the FaRM-style baseline) can
    /// perform the same handshake against a Flock server.
    pub fn dial(&self, name: &str, req: ConnectRequest) -> Result<ConnectReply> {
        let tx = self.control(name)?;
        let (reply_tx, reply_rx) = bounded(1);
        let req = ConnectRequest {
            reply: reply_tx,
            ..req
        };
        tx.send(CtrlMsg::Connect(req))
            .map_err(|_| FlockError::Disconnected)?;
        await_reply(&reply_rx)
    }
}

/// Await a control-plane reply without parking the virtual-time
/// executor's one OS thread.
///
/// The wall path blocks on the channel. The virtual path polls through
/// an [`AdaptiveBackoff`] ladder: a connect storm runs hundreds of
/// dialers concurrently, and a fixed fine-grained poll period would
/// multiply the event count by the storm width while a reply is still
/// tens of microseconds of control-QP work away.
pub(crate) fn await_reply<T>(rx: &Receiver<Result<T>>) -> Result<T> {
    if flock_sync::clock::is_virtual() {
        let mut idle = AdaptiveBackoff::new(Duration::from_micros(50)).with_virtual_cap(50_000);
        loop {
            match rx.try_recv() {
                Ok(reply) => return reply,
                Err(crossbeam::channel::TryRecvError::Empty) => idle.idle(),
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    return Err(FlockError::Disconnected);
                }
            }
        }
    }
    rx.recv().map_err(|_| FlockError::Disconnected)?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_remote_is_an_error() {
        let domain = FlockDomain::with_defaults();
        let node = domain.add_node("c");
        let (tx, _rx) = bounded(1);
        let req = ConnectRequest {
            client_node: node.id(),
            client_qps: vec![],
            response_rings: vec![],
            tenant: 0,
            reply: tx,
        };
        assert!(matches!(
            domain.dial("nobody", req),
            Err(FlockError::UnknownRemote(_))
        ));
    }

    #[test]
    fn listener_registry_roundtrip() {
        let domain = FlockDomain::with_defaults();
        let (tx, rx) = bounded(4);
        domain.register_listener("srv", tx);
        let node = domain.add_node("c");
        let (dummy_tx, _d) = bounded(1);
        // Dial from another thread; accept inline.
        let handle = {
            let req = ConnectRequest {
                client_node: node.id(),
                client_qps: vec![],
                response_rings: vec![],
                tenant: 0,
                reply: dummy_tx,
            };
            std::thread::spawn({
                let domain: &FlockDomain = &domain;
                // SAFETY-free: scoped by join below; use Arc in real code.
                let tx2 = domain.listeners.lock().get("srv").cloned().unwrap();
                move || {
                    let (reply_tx, reply_rx) = bounded(1);
                    let req = ConnectRequest {
                        reply: reply_tx,
                        ..req
                    };
                    tx2.send(CtrlMsg::Connect(req)).unwrap();
                    reply_rx.recv().unwrap()
                }
            })
        };
        let CtrlMsg::Connect(req) = rx.recv().unwrap() else {
            panic!("expected a connect");
        };
        req.reply
            .send(Ok(ConnectReply {
                server_node: NodeId(0),
                server_qps: vec![],
                request_rings: vec![],
                memory_regions: vec![],
                initial_credits: 32,
                sender_id: 7,
            }))
            .unwrap();
        let reply = handle.join().unwrap().unwrap();
        assert_eq!(reply.sender_id, 7);
        domain.unregister_listener("srv");
        assert!(domain.listeners.lock().is_empty());
    }
}
