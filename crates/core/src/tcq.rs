//! Flock synchronization: the thread combining queue (TCQ, paper §4.2).
//!
//! Threads that share a QP coordinate through an MCS-style queue
//! ([Mellor-Crummey & Scott]) instead of a lock. A thread enqueues its
//! request with one atomic swap. If the queue was empty it becomes the
//! transient *leader*: it collects the requests of all queued *followers*
//! (up to a bound, ensuring its own progress), sends one coalesced message,
//! and hands leadership to the first uncollected follower. Followers spin
//! only on their own cache line.
//!
//! Compared to a lock, every enqueued request is eventually sent by *some*
//! leader without the thread ever re-acquiring anything — the combining
//! degree rises with contention, which is exactly the paper's observation
//! that sharing plus coalescing beats both per-thread QPs and lock-based
//! sharing at high thread counts.
//!
//! The queue is generic over the item type: the RPC layer submits encoded
//! request entries, the memory-op layer submits work requests.
//!
//! [Mellor-Crummey & Scott]: https://doi.org/10.1145/103727.103729

use std::alloc::Layout;
use std::ptr;
use std::ptr::NonNull;

use crate::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use crate::sync::{backoff, pool, CachePadded, UnsafeCell};

/// Node states. `WAITING` → (`LEADER` | `SENT`).
const WAITING: u8 = 0;
const LEADER: u8 = 1;
const SENT: u8 = 2;

/// Default bound on requests per coalesced batch (keeps the leader's own
/// latency bounded, paper §4.2).
pub const DEFAULT_BATCH_LIMIT: usize = 16;

/// Aligned to a cache line so a follower spinning on its own node's
/// `state` never shares that line with a neighboring node (DESIGN.md
/// §5c): node memory comes from a pool that hands out tightly packed
/// 64-byte-aligned blocks, so without the alignment two nodes could
/// straddle one line and the leader's writes would steal it from an
/// unrelated spinner.
#[repr(align(64))]
struct Node<T> {
    state: AtomicU8,
    next: AtomicPtr<Node<T>>,
    /// The follower deposits its item before publishing the node; the
    /// leader takes it during collection. Only ever accessed by the owner
    /// (before publication) and by the unique leader (after).
    item: UnsafeCell<Option<T>>,
}

impl<T> Node<T> {
    fn new(item: T) -> Box<Node<T>> {
        Box::new(Node {
            state: AtomicU8::new(WAITING),
            next: AtomicPtr::new(ptr::null_mut()),
            item: UnsafeCell::new(Some(item)),
        })
    }
}

/// Result of [`Tcq::join`].
pub enum Outcome<T> {
    /// Some other thread's leader coalesced and sent this request.
    Sent,
    /// This thread is the leader and must send the batch, then call
    /// [`Tcq::complete`].
    Lead(Batch<T>),
}

/// A collected batch held by the current leader.
///
/// The batch owns the items of every collected request (leader's own item
/// first). Dropping a batch without calling [`Tcq::complete`] would strand
/// the followers, so the runtime always completes; `Batch` has no `Drop`
/// of its own beyond releasing items.
pub struct Batch<T> {
    items: Vec<T>,
    /// Raw nodes backing the batch; `nodes[0]` is the leader's own node.
    nodes: Vec<*mut Node<T>>,
}

impl<T> Batch<T> {
    /// The coalescing degree: number of requests in this batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty (never: it always holds the leader's
    /// own request).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the collected items (leader's own first, then followers in
    /// queue order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Mutably borrow the collected items.
    pub fn items_mut(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Take ownership of the collected items (the batch keeps its queue
    /// bookkeeping so [`Tcq::complete`] still releases the followers).
    ///
    /// Taking the `Vec` removes its buffer from the recycling cycle (the
    /// pool only retains buffers of exactly `batch_limit` capacity);
    /// allocation-free callers should prefer [`Batch::drain_items`].
    pub fn take_items(&mut self) -> Vec<T> {
        std::mem::take(&mut self.items)
    }

    /// Drain the collected items in place (leader's own first, then
    /// followers in queue order), leaving the buffer with the batch so
    /// [`Tcq::complete`] can recycle it. This is the allocation-free
    /// counterpart of [`Batch::take_items`].
    pub fn drain_items(&mut self) -> std::vec::Drain<'_, T> {
        self.items.drain(..)
    }
}

/// The thread combining queue for one shared QP.
///
/// Layout: `tail` sits alone on its own cache line ([`CachePadded`]).
/// Every joining thread RMWs `tail`, while `batches`/`requests` are
/// high-frequency `Relaxed` counters; without the padding each
/// `fetch_add` on the stats would invalidate the line every spinning
/// swapper needs (false sharing, DESIGN.md §5c).
#[derive(Debug)]
pub struct Tcq<T> {
    tail: CachePadded<AtomicPtr<Node<T>>>,
    batch_limit: usize,
    /// Recycle nodes and batch scratch through the thread-local pool
    /// (`sync::pool`). Defaults to on; the `alloc-per-node` feature or
    /// [`Tcq::with_pooling`] restores the historical Box-per-join path.
    pooled: bool,
    batches: AtomicU64,
    requests: AtomicU64,
}

// SAFETY: nodes are shared across threads; access to `item` is serialized
// by the queue protocol (owner before publication, the unique leader
// after), and all cross-thread handoff happens through Release/Acquire
// atomics on `tail`, `next`, and `state`.
unsafe impl<T: Send> Send for Tcq<T> {}
// SAFETY: `&Tcq` only exposes `join`/`complete`, which are the protocol
// entry points described above; `T: Send` suffices because items move
// between threads but are never aliased concurrently.
unsafe impl<T: Send> Sync for Tcq<T> {}

impl<T> Default for Tcq<T> {
    fn default() -> Self {
        Self::new(DEFAULT_BATCH_LIMIT)
    }
}

impl<T> Tcq<T> {
    /// Create a TCQ with the given per-batch request bound (`>= 1`).
    ///
    /// Node/scratch pooling is on unless the `alloc-per-node` escape
    /// hatch feature is enabled.
    pub fn new(batch_limit: usize) -> Tcq<T> {
        Self::with_pooling(batch_limit, !cfg!(feature = "alloc-per-node"))
    }

    /// Create a TCQ with explicit control over hot-path pooling.
    ///
    /// `pooled = false` restores the historical allocation behavior (one
    /// `Box` per `join`, fresh batch `Vec`s per `collect`); it exists for
    /// the `alloc-per-node` escape hatch and for apples-to-apples
    /// benchmarking of the two paths.
    pub fn with_pooling(batch_limit: usize, pooled: bool) -> Tcq<T> {
        assert!(batch_limit >= 1);
        Tcq {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            batch_limit,
            pooled,
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// Allocate and initialize a queue node, recycling a retired block
    /// from this thread's pool when available.
    fn alloc_node(&self, item: T) -> *mut Node<T> {
        if !self.pooled {
            return Box::into_raw(Node::new(item));
        }
        let node = pool::acquire_or_alloc(Layout::new::<Node<T>>())
            .as_ptr()
            .cast::<Node<T>>();
        // SAFETY: `node` is a fresh, uninitialized, exclusively owned
        // block of exactly `Layout::new::<Node<T>>()`; writing the
        // initial value claims it before publication.
        unsafe {
            node.write(Node {
                state: AtomicU8::new(WAITING),
                next: AtomicPtr::new(ptr::null_mut()),
                item: UnsafeCell::new(Some(item)),
            });
        }
        node
    }

    /// Retire a node whose terminal transition has been observed (the
    /// caller is its unique owner again): drop it in place and hand the
    /// block to this thread's pool for the next `join`.
    ///
    /// # Safety
    ///
    /// `node` must have been produced by `alloc_node` on this `Tcq` and
    /// must be exclusively owned by the calling thread (post-`SENT` for
    /// followers, post-handoff for the leader's own node).
    unsafe fn retire_node(&self, node: *mut Node<T>) {
        if !self.pooled {
            // SAFETY: caller guarantees unique ownership; the node was
            // boxed by `alloc_node`.
            unsafe { drop(Box::from_raw(node)) };
            return;
        }
        // SAFETY: caller guarantees unique ownership; the value is
        // initialized (written by `alloc_node`) and dropped exactly once.
        unsafe { ptr::drop_in_place(node) };
        pool::release(
            NonNull::new(node.cast::<u8>()).expect("queue nodes are non-null"),
            Layout::new::<Node<T>>(),
        );
    }

    /// Number of batches formed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of requests submitted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Mean coalescing degree so far (requests per batch).
    pub fn mean_degree(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.requests() as f64 / b as f64
        }
    }

    /// Submit `item`. Blocks (spinning with yields) until the item has been
    /// taken into a batch. Returns [`Outcome::Lead`] if this thread must
    /// perform the send.
    pub fn join(&self, item: T) -> Outcome<T> {
        self.join_with(item, || {})
    }

    /// [`Tcq::join`] with a *boarding window*: when the caller becomes the
    /// leader, `boarding` runs after publication but before the batch is
    /// collected, so requests submitted concurrently during the window
    /// land in this batch instead of the next one. On real hardware the
    /// window exists for free (doorbell + DMA latency); callers on fast
    /// or single-CPU hosts can widen it deliberately (e.g. one
    /// `yield_now`) so combining still emerges under contention.
    ///
    /// `boarding` is not invoked on the follower path, and delaying
    /// collection is always safe: followers link themselves and spin
    /// regardless of how long the leader takes to collect.
    pub fn join_with(&self, item: T, boarding: impl FnOnce()) -> Outcome<T> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let node = self.alloc_node(item);
        // Publish: single atomic swap makes us the queue tail.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if prev.is_null() {
            // Queue was empty: we are the leader.
            boarding();
            return Outcome::Lead(self.collect(node));
        }
        // SAFETY: `prev` was the tail; its owner cannot free it until it
        // observes SENT/LEADER, which cannot happen before its `next` is
        // linked (the leader spins for the link whenever `tail != prev`).
        unsafe {
            (*prev).next.store(node, Ordering::Release);
        }
        // Spin on our own node's state.
        let mut spins = 0u32;
        loop {
            // SAFETY: we own `node` until we observe a terminal state.
            let state = unsafe { (*node).state.load(Ordering::Acquire) };
            match state {
                LEADER => return Outcome::Lead(self.collect(node)),
                SENT => {
                    // Our item was consumed by a leader that no longer
                    // holds any reference to this node.
                    // SAFETY: terminal state observed; we are the unique
                    // owner again and the item slot is empty. Retiring on
                    // the allocating thread is what lets the pool skip
                    // cross-thread synchronization (DESIGN.md §5c).
                    unsafe { self.retire_node(node) };
                    return Outcome::Sent;
                }
                _ => {
                    spins += 1;
                    backoff(spins);
                }
            }
        }
    }

    /// Collect a batch starting at `start` (our own node). Called only by
    /// the unique leader.
    fn collect(&self, start: *mut Node<T>) -> Batch<T> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        // Scratch buffers: recycled at `batch_limit` capacity through the
        // thread-local pool, so a steady-state leader never allocates.
        let (mut nodes, mut items) = if self.pooled {
            (
                pool::acquire_vec::<*mut Node<T>>(self.batch_limit),
                pool::acquire_vec::<T>(self.batch_limit),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        nodes.push(start);
        items.push(
            // SAFETY: `start` is our own node; the item was deposited
            // before publication and no other thread accesses the slot
            // between publication and leadership.
            unsafe { (*start).item.with_mut(|slot| (*slot).take()) }
                .expect("leader's own item present"),
        );
        let mut cur = start;
        while nodes.len() < self.batch_limit {
            // SAFETY: `cur` is a collected, not-yet-released node.
            let mut next = unsafe { (*cur).next.load(Ordering::Acquire) };
            if next.is_null() {
                if self.tail.load(Ordering::Acquire) == cur {
                    break; // queue (currently) ends at cur
                }
                // A successor has swapped the tail but not linked yet.
                let mut spins = 0u32;
                while next.is_null() {
                    spins += 1;
                    backoff(spins);
                    // SAFETY: as above.
                    next = unsafe { (*cur).next.load(Ordering::Acquire) };
                }
            }
            // SAFETY: `next` is published (linked) and WAITING: its item
            // was deposited before publication; only we (the leader) take.
            let item = unsafe { (*next).item.with_mut(|slot| (*slot).take()) }
                .expect("follower item present");
            items.push(item);
            nodes.push(next);
            cur = next;
        }
        Batch { items, nodes }
    }

    /// Finish a batch after sending: hand leadership to the next waiting
    /// thread (if any) and release all batch nodes.
    pub fn complete(&self, batch: Batch<T>) {
        let Batch { items, nodes } = batch;
        if self.pooled {
            // Recycle the scratch buffer (contents dropped) for the next
            // `collect` on this thread.
            pool::release_vec(items, self.batch_limit);
        } else {
            drop(items);
        }
        let last = *nodes.last().expect("batch is never empty");
        // SAFETY: `last` is ours until released below.
        let mut next = unsafe { (*last).next.load(Ordering::Acquire) };
        if next.is_null()
            && self
                .tail
                .compare_exchange(last, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            // A successor has swapped the tail; wait for the link.
            let mut spins = 0u32;
            while next.is_null() {
                spins += 1;
                backoff(spins);
                // SAFETY: as above.
                next = unsafe { (*last).next.load(Ordering::Acquire) };
            }
        }
        if !next.is_null() {
            // SAFETY: `next` is a live, WAITING node owned by a spinning
            // thread; setting LEADER transfers queue-head ownership to it.
            unsafe { (*next).state.store(LEADER, Ordering::Release) };
        }
        // Release nodes. nodes[0] is our own: we retire it directly (no
        // other thread can reach it: its successor, if any, was either
        // collected by us or is the handoff target reached via `last`, and
        // the tail no longer points at it). Followers retire themselves on
        // seeing SENT; we must not touch them afterwards. Note the order:
        // the tail CAS above already happened, so recycling our own node
        // now cannot alias a pointer any concurrent `complete`/`join` CAS
        // still compares against (the no-ABA argument of DESIGN.md §5c).
        let own = nodes[0];
        // SAFETY: see comment above — we are the unique owner of our own
        // node again.
        unsafe { self.retire_node(own) };
        for &n in &nodes[1..] {
            // SAFETY: follower nodes are live until we store SENT.
            unsafe { (*n).state.store(SENT, Ordering::Release) };
        }
        if self.pooled {
            // Recycle the node-pointer scratch for the next `collect`.
            pool::release_vec(nodes, self.batch_limit);
        }
    }
}

impl<T> Drop for Tcq<T> {
    fn drop(&mut self) {
        // A TCQ must be drained before drop; any remaining node belongs to
        // a thread that is still spinning, which would be a bug in the
        // runtime. Nothing to free here (nodes are owned by threads).
        debug_assert!(
            self.tail.load(Ordering::Relaxed).is_null(),
            "TCQ dropped while threads were queued"
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Mutex};

    #[test]
    fn sole_thread_is_always_leader_with_degree_one() {
        let tcq: Tcq<u32> = Tcq::new(8);
        for i in 0..10 {
            match tcq.join(i) {
                Outcome::Lead(batch) => {
                    assert_eq!(batch.items(), &[i]);
                    assert_eq!(batch.len(), 1);
                    tcq.complete(batch);
                }
                Outcome::Sent => panic!("no other thread could have sent"),
            }
        }
        assert_eq!(tcq.batches(), 10);
        assert_eq!(tcq.requests(), 10);
        assert!((tcq.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_limit_is_respected() {
        let tcq: Arc<Tcq<usize>> = Arc::new(Tcq::new(4));
        // Miri runs the same protocol coverage at a fraction of the
        // iteration count; interpretation is ~100x slower than native.
        let n_threads = if cfg!(miri) { 4 } else { 8 };
        let per_thread = if cfg!(miri) { 8 } else { 50 };
        let seen = Arc::new(Mutex::new(Vec::new()));
        let max_degree = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let tcq = Arc::clone(&tcq);
            let seen = Arc::clone(&seen);
            let max_degree = Arc::clone(&max_degree);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    match tcq.join(t * per_thread + i) {
                        Outcome::Lead(batch) => {
                            max_degree.fetch_max(batch.len(), Ordering::Relaxed);
                            seen.lock().unwrap().extend_from_slice(batch.items());
                            tcq.complete(batch);
                        }
                        Outcome::Sent => {}
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(max_degree.load(Ordering::Relaxed) <= 4);
        let mut all = seen.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, (0..n_threads * per_thread).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_delivered_exactly_once_under_contention() {
        let tcq: Arc<Tcq<u64>> = Arc::new(Tcq::new(16));
        // Reduced under Miri (see batch_limit_is_respected).
        let n_threads: u64 = if cfg!(miri) { 4 } else { 12 };
        let per_thread: u64 = if cfg!(miri) { 16 } else { 200 };
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let tcq = Arc::clone(&tcq);
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    match tcq.join(t * per_thread + i) {
                        Outcome::Lead(batch) => {
                            seen.lock().unwrap().extend_from_slice(batch.items());
                            tcq.complete(batch);
                        }
                        Outcome::Sent => {}
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = seen.lock().unwrap().clone();
        let total = (n_threads * per_thread) as usize;
        assert_eq!(all.len(), total, "lost or duplicated items");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "duplicated items");
        assert_eq!(tcq.requests(), total as u64);
        assert!(tcq.batches() <= tcq.requests());
    }

    #[test]
    fn contention_produces_coalescing() {
        // Deterministically force followers: the main thread becomes the
        // leader and holds its batch open while four other threads enqueue
        // behind it. On complete, leadership passes to the first follower,
        // whose batch must coalesce the remaining three.
        let tcq: Arc<Tcq<u64>> = Arc::new(Tcq::new(16));
        let enqueued = Arc::new(AtomicUsize::new(0));
        let batch = match tcq.join(0) {
            Outcome::Lead(b) => b,
            Outcome::Sent => unreachable!("queue was empty"),
        };
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let tcq = Arc::clone(&tcq);
            let enqueued = Arc::clone(&enqueued);
            handles.push(std::thread::spawn(move || {
                enqueued.fetch_add(1, Ordering::SeqCst);
                match tcq.join(t) {
                    Outcome::Lead(b) => tcq.complete(b),
                    Outcome::Sent => {}
                }
            }));
        }
        // Wait until all four are about to (or already did) enqueue, then
        // give them time to finish the swap+link.
        while enqueued.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        let settle = if cfg!(miri) { 5 } else { 100 };
        std::thread::sleep(std::time::Duration::from_millis(settle));
        tcq.complete(batch);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tcq.requests(), 5);
        // Batch 1 was ours (degree 1); the followers were coalesced into
        // at most a couple of batches.
        assert!(
            tcq.batches() < 5,
            "batches {} = requests: no coalescing at all",
            tcq.batches()
        );
        assert!(tcq.mean_degree() > 1.2, "degree {}", tcq.mean_degree());
    }

    #[test]
    fn items_preserve_queue_order_within_batch() {
        let tcq: Tcq<u32> = Tcq::new(8);
        // Single-threaded: enqueue via join is inherently one at a time,
        // so emulate the follower path with two threads and a barrier.
        let tcq = Arc::new(tcq);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let tcq2 = Arc::clone(&tcq);
        let b2 = Arc::clone(&barrier);
        let h = std::thread::spawn(move || {
            b2.wait();
            match tcq2.join(2) {
                Outcome::Lead(batch) => {
                    let items = batch.items().to_vec();
                    tcq2.complete(batch);
                    items
                }
                Outcome::Sent => vec![],
            }
        });
        barrier.wait();
        let mine = match tcq.join(1) {
            Outcome::Lead(batch) => {
                let items = batch.items().to_vec();
                tcq.complete(batch);
                items
            }
            Outcome::Sent => vec![],
        };
        let theirs = h.join().unwrap();
        let mut all = mine;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn stats_track_batches_and_requests() {
        let tcq: Tcq<()> = Tcq::new(4);
        assert_eq!(tcq.mean_degree(), 0.0);
        match tcq.join(()) {
            Outcome::Lead(b) => tcq.complete(b),
            Outcome::Sent => unreachable!(),
        }
        assert_eq!(tcq.batches(), 1);
        assert_eq!(tcq.requests(), 1);
    }
}
