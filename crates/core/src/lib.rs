#![warn(missing_docs)]

//! # flock-core
//!
//! A Rust reproduction of **Flock** (Monga, Kashyap, Min — SOSP 2021), a
//! communication framework that scales RDMA RPCs over hardware reliable
//! connections by *sharing queue pairs among threads*.
//!
//! The library provides the paper's three contributions:
//!
//! 1. **Connection handle abstraction** ([`client::ConnectionHandle`]) —
//!    one logical connection per remote node multiplexing application
//!    threads over an internally managed set of RC QPs, exposing RPC,
//!    one-sided memory, and atomic operations (Table 2; see [`api`]).
//! 2. **Flock synchronization** ([`tcq::Tcq`]) — an MCS-style thread
//!    combining queue: a transient leader coalesces concurrent requests
//!    into one message ([`msg`]) written with a single RDMA write into the
//!    peer's ring buffer ([`ring`]).
//! 3. **Symbiotic send-recv scheduling** ([`sched`]) — receiver-side QP
//!    scheduling with credit renewal ([`credit`]) bounding active QPs at
//!    the server, and sender-side thread scheduling (Algorithm 1) packing
//!    threads onto active QPs by request-size class.
//!
//! The RDMA substrate is the in-process [`flock_fabric`] crate (see
//! DESIGN.md for the hardware-substitution rationale).
//!
//! ## Quickstart
//!
//! ```
//! use flock_core::client::HandleConfig;
//! use flock_core::server::{FlockServer, ServerConfig};
//! use flock_core::{ConnectionHandle, FlockDomain};
//!
//! let domain = FlockDomain::with_defaults();
//! let server_node = domain.add_node("server");
//! let client_node = domain.add_node("client");
//!
//! let server = FlockServer::listen(&domain, &server_node, "kv", ServerConfig::default());
//! server.reg_handler(1, |req| {
//!     let mut out = b"echo:".to_vec();
//!     out.extend_from_slice(req);
//!     out
//! });
//!
//! let handle = ConnectionHandle::connect(
//!     &domain, &client_node, "kv", HandleConfig::default(),
//! ).unwrap();
//! let t = handle.register_thread();
//! let reply = t.call(1, b"hello").unwrap();
//! assert_eq!(reply, b"echo:hello");
//! server.shutdown(&domain);
//! ```

pub mod alock;
pub mod api;
pub mod client;
pub mod credit;
pub mod domain;
pub mod error;
pub mod msg;
pub mod onesided;
pub mod ring;
pub mod sched;
pub mod server;
pub mod sync;
pub mod tcq;

pub use alock::{ALock, LockWord, RemoteLockWord};
pub use bytes::Bytes;
pub use client::{ConnectionHandle, FlThread, HandleConfig, HandleMetrics, MemToken, QpMetrics};
pub use domain::{FlockDomain, MemRegionInfo, RingInfo, SegmentLease};
pub use onesided::{OneSidedReader, SegmentWriter, SlotLayout};
pub use error::{FlockError, Result};
pub use server::{auto_dispatch_threads, lpt_partition, FlockServer, ServerConfig};
pub use tcq::Tcq;
