//! One-sided fast-path reads over exported segments.
//!
//! Flock's thesis (paper §2) is that coalesced RPC beats one-sided
//! access once fan-in and message rate grow. To *measure* that, this
//! module is the one-sided contender: a server publishes versioned
//! value slots into an exported memory region ([`SegmentWriter`]), and
//! clients read them with raw RDMA READs plus version-word validation
//! ([`OneSidedReader`]) — zero server CPU per read, one NIC verb, no
//! coalescing. The crossover between the two is pinned by
//! `bench_onesided` (see EXPERIMENTS.md, "RPC vs one-sided crossover").
//!
//! ## Slot layout and the validation protocol
//!
//! Every slot is `[version word: u64][len: u32][pad: u32][value bytes]`
//! ([`SlotLayout`]). The word follows the kvstore's seqlock convention
//! (`flock-kvstore`'s `versioned` module): bit 63 ([`LOCK_BIT`]) is the
//! write lock, the low 63 bits are the version. A publish goes
//!
//! 1. `word ← version | LOCK_BIT`   (writers observe the slot locked)
//! 2. value bytes + length
//! 3. `word ← version + 1`          (unlock and advance)
//!
//! The in-process fabric executes each verb atomically against a region
//! (one reader/writer lock acquisition per DMA, `flock_fabric::mr`), so
//! a remote READ spanning the whole slot observes the slot either
//! before step 1 (old word, old value — consistent), between steps
//! (locked word — rejected), or after step 3 (new word, new value —
//! consistent). A reader therefore validates with a single check — the
//! word must be unlocked and the length in bounds — and retries a
//! bounded number of times on rejection. This mirrors what real seqlock
//! readers over RDMA do (FaRM-style lock-free reads), compressed to the
//! torn-read granularity our fabric can actually produce.

use flock_fabric::RemoteAddr;
use std::sync::Arc;

use crate::client::{FlThread, MemToken, MEM_SUBSLOT_SIZE};
use crate::domain::SegmentLease;
use crate::error::{FlockError, Result};

/// Write-lock bit of a slot's version word (bit 63, matching the
/// kvstore's `versioned::LOCK_BIT` — the two paths share the seqlock
/// convention so a gateway can mirror store entries into a segment).
pub const LOCK_BIT: u64 = 1 << 63;

/// Byte layout of one versioned slot:
/// `[word: u64][len: u32][pad: u32][value: val_cap bytes]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    /// Total bytes per slot (8-byte aligned).
    pub stride: u32,
    /// Maximum value bytes a slot can hold.
    pub val_cap: u32,
}

impl SlotLayout {
    /// Bytes of header before the value: version word + length + pad.
    pub const HEADER: usize = 16;

    /// Layout for slots holding up to `val_cap` value bytes.
    pub fn for_value_cap(val_cap: u32) -> SlotLayout {
        let stride = (Self::HEADER as u32 + val_cap).next_multiple_of(8);
        SlotLayout { stride, val_cap }
    }

    /// Recover the layout from a lease (`meta` carries the value
    /// capacity by the [`SegmentWriter`] convention).
    pub fn from_lease(lease: &SegmentLease) -> SlotLayout {
        SlotLayout {
            stride: lease.stride,
            val_cap: lease.meta as u32,
        }
    }

    /// Byte offset of slot `i` from the segment base.
    pub fn slot_off(&self, slot: u32) -> usize {
        slot as usize * self.stride as usize
    }
}

/// A validated one-sided read: the version word observed and the number
/// of value bytes (the value itself is in the caller's buffer at
/// `[SlotLayout::HEADER..HEADER + len]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotValue {
    /// Unlocked version word the read observed.
    pub word: u64,
    /// Value length in bytes.
    pub len: usize,
}

/// Validate one slot image. `None` means the snapshot is unusable — the
/// word was locked (a publish was in flight) or the length is out of
/// bounds — and the caller should retry the read.
pub fn decode_slot(buf: &[u8], val_cap: u32) -> Option<SlotValue> {
    if buf.len() < SlotLayout::HEADER {
        return None;
    }
    let word = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    if word & LOCK_BIT != 0 {
        return None;
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    if len > val_cap as usize || SlotLayout::HEADER + len > buf.len() {
        return None;
    }
    Some(SlotValue { word, len })
}

/// Server-side publisher of a versioned slot segment inside a memory
/// region registered with `fl_attach_mreg`. Pair with
/// `FlockServer::export_segment` to hand clients the lease.
pub struct SegmentWriter {
    mr: Arc<flock_fabric::MemoryRegion>,
    base: usize,
    layout: SlotLayout,
    slots: u32,
}

impl SegmentWriter {
    /// Wrap `slots` slots of `layout` starting at byte `base` of `mr`,
    /// initializing every version word to the unlocked version 0.
    pub fn new(
        mr: Arc<flock_fabric::MemoryRegion>,
        base: usize,
        layout: SlotLayout,
        slots: u32,
    ) -> Result<SegmentWriter> {
        let need = base + layout.stride as usize * slots as usize;
        if layout.stride < SlotLayout::HEADER as u32 || need > mr.len() {
            return Err(FlockError::CorruptMessage("segment overruns its region"));
        }
        let w = SegmentWriter {
            mr,
            base,
            layout,
            slots,
        };
        for s in 0..slots {
            w.mr.write_u64(w.off(s)?, 0)
                .map_err(|_| FlockError::RemoteOpFailed("segment init failed"))?;
        }
        Ok(w)
    }

    /// The layout this writer publishes with.
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Number of slots.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    fn off(&self, slot: u32) -> Result<usize> {
        if slot >= self.slots {
            return Err(FlockError::RemoteOpFailed("slot out of range"));
        }
        Ok(self.base + self.layout.slot_off(slot))
    }

    /// Seqlock-publish `value` into `slot`: lock the word, write the
    /// payload, unlock with the version advanced. Returns the new word.
    pub fn publish(&self, slot: u32, value: &[u8]) -> Result<u64> {
        let cur = self
            .mr
            .read_u64(self.off(slot)?)
            .map_err(|_| FlockError::RemoteOpFailed("segment read failed"))?;
        let next = ((cur & !LOCK_BIT) + 1) & !LOCK_BIT;
        self.publish_with_word(slot, value, next)?;
        Ok(next)
    }

    /// Seqlock-publish with a caller-supplied final word (must be
    /// unlocked). Lets a store mirror its own version words into the
    /// segment so RPC and one-sided readers agree on versions.
    pub fn publish_with_word(&self, slot: u32, value: &[u8], word: u64) -> Result<()> {
        if word & LOCK_BIT != 0 {
            return Err(FlockError::RemoteOpFailed("published word is locked"));
        }
        if value.len() > self.layout.val_cap as usize {
            return Err(FlockError::MessageTooLarge {
                need: value.len(),
                capacity: self.layout.val_cap as usize,
            });
        }
        let off = self.off(slot)?;
        let fail = |_| FlockError::RemoteOpFailed("segment write failed");
        // Step 1: lock. Readers that snapshot from here on reject.
        self.mr.write_u64(off, word | LOCK_BIT).map_err(fail)?;
        // Step 2: payload (length, then bytes).
        let mut hdr = [0u8; 8];
        hdr[..4].copy_from_slice(&(value.len() as u32).to_le_bytes());
        self.mr.write(off + 8, &hdr).map_err(fail)?;
        self.mr.write(off + SlotLayout::HEADER, value).map_err(fail)?;
        // Step 3: unlock with the final word.
        self.mr.write_u64(off, word).map_err(fail)?;
        Ok(())
    }
}

/// Counters a [`OneSidedReader`] accumulates; the `Adaptive` read mode
/// keys off the retry rate observable here.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReadStats {
    /// Successfully validated slot reads.
    pub reads: u64,
    /// RDMA READ verbs issued (reads + retries).
    pub verbs: u64,
    /// Snapshots rejected as locked/torn and re-issued.
    pub retries: u64,
    /// Reads abandoned after the retry bound.
    pub failures: u64,
}

/// Default bound on re-reads of a locked/torn slot before giving up.
pub const DEFAULT_MAX_RETRIES: u32 = 16;

/// Client-side one-sided reader over a [`SegmentLease`].
///
/// Owns no connection state — the issuing [`FlThread`] is passed per
/// call, so one reader per application thread is the intended shape.
/// The token buffer is reused across calls; with a caller-provided
/// landing buffer the read/validate loop allocates nothing in steady
/// state (enforced by `cargo xtask lint`).
pub struct OneSidedReader {
    lease: SegmentLease,
    layout: SlotLayout,
    max_retries: u32,
    tokens: Vec<MemToken>,
    stats: ReadStats,
}

impl OneSidedReader {
    /// Build a reader over `lease`. Slots must fit one scratch sub-slot
    /// ([`MEM_SUBSLOT_SIZE`] bytes) so a slot read is a single verb.
    pub fn new(lease: SegmentLease) -> Result<OneSidedReader> {
        if lease.stride as usize > MEM_SUBSLOT_SIZE {
            return Err(FlockError::MessageTooLarge {
                need: lease.stride as usize,
                capacity: MEM_SUBSLOT_SIZE,
            });
        }
        if (lease.stride as usize) < SlotLayout::HEADER {
            return Err(FlockError::CorruptMessage("lease stride below header"));
        }
        let layout = SlotLayout::from_lease(&lease);
        Ok(OneSidedReader {
            lease,
            layout,
            max_retries: DEFAULT_MAX_RETRIES,
            tokens: Vec::with_capacity(crate::client::MEM_SUBSLOTS),
            stats: ReadStats::default(),
        })
    }

    /// Override the torn-read retry bound.
    pub fn with_max_retries(mut self, bound: u32) -> OneSidedReader {
        self.max_retries = bound;
        self
    }

    /// The lease this reader holds.
    pub fn lease(&self) -> &SegmentLease {
        &self.lease
    }

    /// The slot layout in force.
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Number of slots in the segment.
    pub fn slots(&self) -> u32 {
        self.lease.slots
    }

    /// Counters since the last [`OneSidedReader::take_stats`].
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Return and reset the counters.
    pub fn take_stats(&mut self) -> ReadStats {
        std::mem::take(&mut self.stats)
    }

    /// Remote address of slot `slot` (self-contained from the lease).
    pub fn slot_addr(&self, slot: u32) -> RemoteAddr {
        RemoteAddr {
            rkey: self.lease.region.rkey,
            addr: self.lease.region.addr + self.layout.slot_off(slot) as u64,
        }
    }

    /// The one-sided fast path: READ one slot into `buf` (≥ stride
    /// bytes), validate the version word, retry on a locked/torn
    /// snapshot up to the bound. On success the value bytes are at
    /// `buf[SlotLayout::HEADER..HEADER + v.len]`.
    ///
    /// Hot-path invariant: no heap allocation in steady state — the
    /// verb goes out via [`FlThread::read_batch`] (direct doorbell, no
    /// TCQ detour) and comes back via [`FlThread::take_deferred`]
    /// (copy-out from scratch, no intermediate `Vec`).
    pub fn read_slot(&mut self, t: &FlThread, slot: u32, buf: &mut [u8]) -> Result<SlotValue> {
        if slot >= self.lease.slots {
            return Err(FlockError::RemoteOpFailed("slot out of range"));
        }
        let stride = self.layout.stride as usize;
        if buf.len() < stride {
            return Err(FlockError::MessageTooLarge {
                need: stride,
                capacity: buf.len(),
            });
        }
        let target = [(self.slot_addr(slot), stride)];
        let mut attempts = 0;
        loop {
            self.stats.verbs += 1;
            self.tokens.clear();
            t.read_batch(&target, &mut self.tokens)?;
            let token = self.tokens[0];
            let n = t.take_deferred(token, &mut buf[..stride])?;
            if let Some(v) = decode_slot(&buf[..n], self.layout.val_cap) {
                self.stats.reads += 1;
                return Ok(v);
            }
            self.stats.retries += 1;
            attempts += 1;
            if attempts > self.max_retries {
                self.stats.failures += 1;
                return Err(FlockError::RemoteOpFailed(
                    "one-sided read exceeded retry bound",
                ));
            }
        }
    }

    /// Doorbell-batched variant: READ up to [`crate::client::MEM_SUBSLOTS`]
    /// slots with one doorbell into `buf` (stride-sized chunk per slot),
    /// validate each, and re-read only the rejected ones. `out` receives
    /// one [`SlotValue`] per requested slot, in order.
    pub fn read_slots(
        &mut self,
        t: &FlThread,
        slots: &[u32],
        buf: &mut [u8],
        out: &mut Vec<SlotValue>,
    ) -> Result<()> {
        let stride = self.layout.stride as usize;
        if slots.len() > crate::client::MEM_SUBSLOTS {
            return Err(FlockError::RemoteOpFailed(
                "slot batch exceeds scratch sub-slots",
            ));
        }
        if buf.len() < stride * slots.len() {
            return Err(FlockError::MessageTooLarge {
                need: stride * slots.len(),
                capacity: buf.len(),
            });
        }
        out.clear();
        let mut targets = [(RemoteAddr { rkey: self.lease.region.rkey, addr: 0 }, 0usize);
            crate::client::MEM_SUBSLOTS];
        for (i, &s) in slots.iter().enumerate() {
            if s >= self.lease.slots {
                return Err(FlockError::RemoteOpFailed("slot out of range"));
            }
            targets[i] = (self.slot_addr(s), stride);
        }
        self.stats.verbs += slots.len() as u64;
        self.tokens.clear();
        t.read_batch(&targets[..slots.len()], &mut self.tokens)?;
        // Copy each completion out, validate, and note the rejects.
        let mut torn = [false; crate::client::MEM_SUBSLOTS];
        let mut any_torn = false;
        for i in 0..slots.len() {
            let token = self.tokens[i];
            let chunk = &mut buf[i * stride..(i + 1) * stride];
            let n = t.take_deferred(token, chunk)?;
            match decode_slot(&chunk[..n], self.layout.val_cap) {
                Some(v) => {
                    self.stats.reads += 1;
                    out.push(v);
                }
                None => {
                    self.stats.retries += 1;
                    torn[i] = true;
                    any_torn = true;
                    out.push(SlotValue { word: LOCK_BIT, len: 0 });
                }
            }
        }
        if any_torn {
            // Second pass: the torn slots re-read individually under the
            // usual retry bound.
            for i in 0..slots.len() {
                if torn[i] {
                    let chunk = &mut buf[i * stride..(i + 1) * stride];
                    out[i] = self.read_slot(t, slots[i], chunk)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_fabric::{Access, MrTable};

    fn writer(val_cap: u32, slots: u32) -> SegmentWriter {
        let layout = SlotLayout::for_value_cap(val_cap);
        let mrs = MrTable::new();
        let mr = mrs.register(layout.stride as usize * slots as usize, Access::REMOTE_ALL);
        SegmentWriter::new(mr, 0, layout, slots).expect("writer")
    }

    #[test]
    fn layout_is_aligned_and_bounded() {
        let l = SlotLayout::for_value_cap(100);
        assert_eq!(l.stride % 8, 0);
        assert!(l.stride as usize >= SlotLayout::HEADER + 100);
        assert_eq!(l.slot_off(3), 3 * l.stride as usize);
    }

    #[test]
    fn publish_then_decode_roundtrip() {
        let w = writer(64, 4);
        let word = w.publish(2, b"hello").expect("publish");
        assert_eq!(word, 1);
        let mut img = vec![0u8; w.layout().stride as usize];
        w.mr.read(w.off(2).unwrap(), &mut img).unwrap();
        let v = decode_slot(&img, 64).expect("valid");
        assert_eq!(v.word, 1);
        assert_eq!(&img[SlotLayout::HEADER..SlotLayout::HEADER + v.len], b"hello");
        // Republish bumps the version.
        assert_eq!(w.publish(2, b"world").unwrap(), 2);
    }

    #[test]
    fn locked_word_is_rejected() {
        let w = writer(64, 1);
        w.publish(0, b"v1").unwrap();
        // Manually lock the word, as a publish-in-flight would.
        let cur = w.mr.read_u64(0).unwrap();
        w.mr.write_u64(0, cur | LOCK_BIT).unwrap();
        let mut img = vec![0u8; w.layout().stride as usize];
        w.mr.read(0, &mut img).unwrap();
        assert!(decode_slot(&img, 64).is_none());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut img = vec![0u8; 32];
        img[8..12].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_slot(&img, 8).is_none());
    }

    #[test]
    fn publish_with_word_mirrors_versions() {
        let w = writer(16, 2);
        w.publish_with_word(0, b"x", 41).unwrap();
        let mut img = vec![0u8; w.layout().stride as usize];
        w.mr.read(0, &mut img).unwrap();
        assert_eq!(decode_slot(&img, 16).unwrap().word, 41);
        // A locked word is refused outright.
        assert!(w.publish_with_word(0, b"x", LOCK_BIT | 7).is_err());
    }

    #[test]
    fn writer_bounds_are_enforced() {
        let layout = SlotLayout::for_value_cap(32);
        let mrs = MrTable::new();
        let mr = mrs.register(layout.stride as usize, Access::REMOTE_ALL);
        assert!(SegmentWriter::new(Arc::clone(&mr), 0, layout, 2).is_err());
        let w = SegmentWriter::new(mr, 0, layout, 1).unwrap();
        assert!(w.publish(1, b"x").is_err());
        assert!(w.publish(0, &[0u8; 64]).is_err());
    }
}
