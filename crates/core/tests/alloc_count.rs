//! Proof of the zero-allocation hot send path (DESIGN.md §5c).
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass populates the thread-local pools, the steady-state
//! `join`/`complete` cycle must perform **zero** heap allocations.
//!
//! Everything runs inside a single `#[test]` function: Rust's test
//! harness runs tests on separate threads (and concurrently unless
//! `--test-threads=1`), so a global allocation counter shared across
//! `#[test]` functions would pick up harness noise. Sequential scenarios
//! inside one test keep the counter honest.

// The escape hatch restores Box-per-join allocation, so the steady-state
// assertion only holds on the default (pooled) configuration.
#![cfg(not(feature = "alloc-per-node"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use flock_core::tcq::{Outcome, Tcq};
use flock_core::Bytes;

/// Forwards to the system allocator, counting allocations made by the
/// measuring thread while armed. The arm flag is thread-local so the
/// test harness's own threads (which allocate at will) don't pollute
/// the count. Deallocations are not counted: recycling is allowed to
/// *release* memory lazily (TLS teardown), it just must not *acquire*
/// any.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the counter has no effect on the returned memory. The
// const-initialized TLS read cannot allocate (no lazy init), and
// `try_with` tolerates TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: counting is a side effect only; allocation itself is
    // delegated to `System` under the caller's `layout` contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: caller upholds `GlobalAlloc`'s contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller passes a pointer previously returned by `alloc`
        // with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Run `f` with the counter armed on this thread, returning how many
/// allocations it made.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::Relaxed);
    ARMED.with(|c| c.set(true));
    f();
    ARMED.with(|c| c.set(false));
    ALLOCS.load(Ordering::Relaxed)
}

/// One leader-path cycle: join, drain the batch in place, complete.
fn cycle(tcq: &Tcq<u64>, item: u64) {
    match tcq.join(item) {
        Outcome::Lead(mut batch) => {
            let mut sum = 0u64;
            for it in batch.drain_items() {
                sum = sum.wrapping_add(it);
            }
            std::hint::black_box(sum);
            tcq.complete(batch);
        }
        Outcome::Sent => unreachable!("single-threaded join must lead"),
    }
}

#[test]
fn steady_state_hot_path_is_allocation_free() {
    // Sanity: the boxed escape-hatch path must register allocations,
    // proving the counter is alive before we assert zeroes with it.
    let boxed: Tcq<u64> = Tcq::with_pooling(16, false);
    let boxed_allocs = count_allocs(|| {
        for i in 0..100 {
            cycle(&boxed, i);
        }
    });
    assert!(
        boxed_allocs >= 100,
        "counting allocator is not live (saw {boxed_allocs} allocations \
         over 100 Box-per-join cycles)"
    );

    // Warm-up: the first pooled cycle seeds this thread's pool with the
    // node block and the two batch scratch buffers.
    let tcq: Tcq<u64> = Tcq::new(16);
    cycle(&tcq, 0);

    // Steady state: every further join/complete recycles those blocks.
    let steady = count_allocs(|| {
        for i in 1..=10_000 {
            cycle(&tcq, i);
        }
    });
    assert_eq!(
        steady, 0,
        "hot send path allocated {steady} times over 10k steady-state \
         join/complete cycles; node or scratch recycling regressed"
    );

    // Zero-copy payload plumbing: cloning and slicing `Bytes` is
    // refcounting, never a copy or an allocation.
    let payload = Bytes::from(vec![7u8; 1024]);
    let bytes_allocs = count_allocs(|| {
        for i in 0..1_000usize {
            let c = payload.clone();
            let s = c.slice(i % 512..(i % 512) + 256);
            std::hint::black_box(&s);
        }
    });
    assert_eq!(
        bytes_allocs, 0,
        "Bytes clone/slice allocated {bytes_allocs} times; zero-copy \
         payload handoff regressed"
    );
}
