//! Bounded-exhaustive model checking of the ALock cohort protocol.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p flock-core --test loom_alock --release
//! ```
//!
//! (or `cargo loom`). The ALock splits a lock into a local ticket lock
//! per cohort plus one global word taken by remote CAS
//! (`flock_core::alock`); the properties worth exhaustive interleaving
//! coverage are:
//!
//! * **Mutual exclusion** — across two cohorts sharing one global
//!   word, no two critical sections overlap, under any interleaving of
//!   local handoffs and remote CAS attempts.
//! * **No lost handover** — a release with a cohort-mate waiting always
//!   admits that mate: every acquirer's critical section runs exactly
//!   once (the model's deadlock detector fails the test if a handover
//!   can be dropped and strand a waiter).
//! * **Global word hygiene** — after all threads quiesce, the word is
//!   free; a cohort never leaves it held.
//!
//! The scenarios are tiny (2–3 threads): the interesting races —
//! handoff vs. new ticket, cap-forced release vs. foreign CAS,
//! release-then-re-win — all manifest with two or three threads.

#![cfg(loom)]

use flock_core::alock::{ALock, LockWord};
use flock_core::error::Result;
use flock_core::sync::atomic::{AtomicU64, Ordering};
use flock_core::sync::{thread, Arc};

/// The global word as the loom model sees it: an in-memory CAS standing
/// in for the one-sided `fl_cmp_and_swap` (the NIC executes the remote
/// verb atomically, so a loom atomic is an exact model of its effect).
struct ModelWord(AtomicU64);

impl ModelWord {
    fn new() -> ModelWord {
        ModelWord(AtomicU64::new(0))
    }
}

impl LockWord for &ModelWord {
    fn try_acquire(&self) -> Result<bool> {
        Ok(self
            .0
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok())
    }

    fn release(&self) -> Result<()> {
        self.0.store(0, Ordering::Release);
        Ok(())
    }
}

/// One critical section: acquire, bump the shared counter while
/// asserting we are alone inside, release.
fn critical(lock: &ALock, word: &ModelWord, in_cs: &AtomicU64, done: &AtomicU64) {
    let ticket = lock.acquire(&word).unwrap();
    assert_eq!(in_cs.fetch_add(1, Ordering::AcqRel), 0, "two threads in CS");
    in_cs.fetch_sub(1, Ordering::AcqRel);
    done.fetch_add(1, Ordering::AcqRel);
    lock.release(&word, ticket).unwrap();
}

/// Two threads of ONE cohort: mutual exclusion and exactly-once service
/// under every interleaving of ticket taking, handoff, and release.
#[test]
fn one_cohort_mutual_exclusion_and_no_lost_handover() {
    loom::model(|| {
        let word = Arc::new(ModelWord::new());
        let lock = Arc::new(ALock::new(4));
        let in_cs = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (word, lock) = (Arc::clone(&word), Arc::clone(&lock));
                let (in_cs, done) = (Arc::clone(&in_cs), Arc::clone(&done));
                thread::spawn(move || critical(&lock, &word, &in_cs, &done))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Exactly-once service (a lost handover deadlocks above instead).
        assert_eq!(done.load(Ordering::Acquire), 2);
        // The cohort never leaves the global word held.
        assert_eq!(word.0.load(Ordering::Acquire), 0, "global word leaked");
    });
}

/// Two cohorts (one thread each) racing remote CAS on the shared word:
/// the asymmetric fast path must still be mutually exclusive across
/// cohorts, and both must win eventually.
#[test]
fn two_cohorts_exclude_each_other_on_the_global_word() {
    loom::model(|| {
        let word = Arc::new(ModelWord::new());
        let in_cs = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let word = Arc::clone(&word);
                let (in_cs, done) = (Arc::clone(&in_cs), Arc::clone(&done));
                thread::spawn(move || {
                    // Each thread is its own cohort: no local handoffs
                    // possible, every acquire goes to the remote CAS.
                    let lock = ALock::new(4);
                    critical(&lock, &word, &in_cs, &done);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Acquire), 2);
        assert_eq!(word.0.load(Ordering::Acquire), 0, "global word leaked");
    });
}

/// A cohort of two against a foreign single-thread cohort: local
/// handoff keeps the word held across the first release, yet the
/// foreign cohort still gets through once the cap (or an empty local
/// queue) releases the word.
#[test]
fn handoff_holds_word_but_foreign_cohort_still_wins() {
    loom::model(|| {
        let word = Arc::new(ModelWord::new());
        let in_cs = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let cohort = Arc::new(ALock::new(1));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (word, lock) = (Arc::clone(&word), Arc::clone(&cohort));
            let (in_cs, done) = (Arc::clone(&in_cs), Arc::clone(&done));
            handles.push(thread::spawn(move || critical(&lock, &word, &in_cs, &done)));
        }
        {
            let word = Arc::clone(&word);
            let (in_cs, done) = (Arc::clone(&in_cs), Arc::clone(&done));
            handles.push(thread::spawn(move || {
                let foreign = ALock::new(1);
                critical(&foreign, &word, &in_cs, &done);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Acquire), 3);
        assert_eq!(word.0.load(Ordering::Acquire), 0, "global word leaked");
    });
}
