//! Property tests for the two scheduling state machines behind the
//! elastic control plane: the receiver-side QP scheduler
//! (`sched::qp::QpScheduler`, paper §5.1) and the sender-side thread
//! packer (`sched::thread::assign_threads`, Algorithm 1). The unit
//! tests pin down known-answer cases; these properties pin down the
//! invariants that churn (register/unregister/add_qp interleaved with
//! redistribution) must never violate.

use flock_core::sched::{assign_threads, QpScheduler, QpSchedulerConfig, SenderQp, ThreadLoadStats};
use proptest::collection::vec;
use proptest::prelude::*;

fn sched(max_aqp: usize) -> QpScheduler {
    QpScheduler::new(QpSchedulerConfig {
        max_aqp,
        grant_size: 32,
    })
}

/// Drive one utilization interval: sender `i` reports `util[i]` renewal
/// requests of degree 1 on its first QP (degree-1 renewals keep the
/// proportionality arithmetic transparent: U_i == util[i]).
fn report(s: &mut QpScheduler, util: &[u64]) {
    for (i, &u) in util.iter().enumerate() {
        for _ in 0..u {
            s.on_credit_request(
                SenderQp {
                    sender: i as u32,
                    qp: 0,
                },
                1,
            );
        }
    }
}

fn active_count(s: &QpScheduler, sender: u32) -> usize {
    s.active_map(sender)
        .map(|m| m.iter().filter(|a| **a).count())
        .unwrap_or(0)
}

proptest! {
    /// After redistribution every sender holds at least one active QP
    /// (dormant senders included — the paper's "AQP_i = 1 otherwise"
    /// branch), no sender exceeds its lane count, and the busy senders'
    /// shares respect the global MAX_AQP budget.
    #[test]
    fn redistribution_respects_budget_and_floors(
        n_qps in vec(1usize..8, 1..12),
        util in vec(0u64..64, 1..12),
        max_aqp in 1usize..32,
    ) {
        let n = n_qps.len().min(util.len());
        let mut s = sched(max_aqp);
        for (i, &q) in n_qps.iter().take(n).enumerate() {
            s.register_sender(i as u32, q);
        }
        report(&mut s, &util[..n]);
        s.redistribute();

        let mut busy_total = 0usize;
        for (i, &q) in n_qps.iter().take(n).enumerate() {
            let a = active_count(&s, i as u32);
            prop_assert!(a >= 1, "sender {} starved: {} active", i, a);
            prop_assert!(a <= q, "sender {} over its {} lanes: {}", i, q, a);
            if util[i] > 0 {
                busy_total += a;
            }
        }
        // Each busy sender's target is (max_aqp * U_i / ΣU).clamp(1, n_i),
        // so the sum over busy senders is at most max_aqp + one floor per
        // rounded-to-zero share.
        let floors = util[..n].iter().filter(|&&u| u > 0).count();
        prop_assert!(
            busy_total <= max_aqp + floors,
            "busy shares {} blow the budget {} (+{} floors)",
            busy_total, max_aqp, floors
        );
    }

    /// Proportionality is monotone: with identical lane counts, a sender
    /// reporting strictly more utilization never ends up with fewer
    /// active QPs than a sender reporting less.
    #[test]
    fn shares_are_monotone_in_utilization(
        util in vec(0u64..256, 2..10),
        n_qps in 1usize..9,
        max_aqp in 1usize..64,
    ) {
        let mut s = sched(max_aqp);
        for i in 0..util.len() {
            s.register_sender(i as u32, n_qps);
        }
        report(&mut s, &util);
        s.redistribute();

        for i in 0..util.len() {
            for j in 0..util.len() {
                if util[i] > util[j] {
                    let (ai, aj) = (active_count(&s, i as u32), active_count(&s, j as u32));
                    prop_assert!(
                        ai >= aj,
                        "U_{i}={} got {} lanes but U_{j}={} got {}",
                        util[i], ai, util[j], aj
                    );
                }
            }
        }
    }

    /// Churn safety: an arbitrary interleaving of register, unregister,
    /// add_qp, credit traffic, and redistribution leaves the scheduler
    /// consistent — total_active matches the per-sender maps, departed
    /// senders stay gone, and grants only flow on active QPs. This is
    /// the state machine `detach_one`/`attach_one` drive under load.
    #[test]
    fn churn_interleaving_keeps_scheduler_consistent(
        ops in vec((0u8..5, 0u32..6, 1usize..5), 1..64),
        max_aqp in 1usize..16,
    ) {
        let mut s = sched(max_aqp);
        let mut live: Vec<u32> = Vec::new();
        for (op, id, arg) in ops {
            match op {
                0 => {
                    if !live.contains(&id) {
                        s.register_sender(id, arg);
                        live.push(id);
                    }
                }
                1 => {
                    let freed = s.unregister_sender(id);
                    if live.contains(&id) {
                        prop_assert!(!freed.is_empty(), "live sender {} freed nothing", id);
                    } else {
                        prop_assert!(freed.is_empty(), "ghost sender {} freed {:?}", id, freed);
                    }
                    live.retain(|&x| x != id);
                    prop_assert!(s.active_map(id).is_none());
                }
                2 => {
                    let lane = s.add_qp(id);
                    prop_assert_eq!(lane.is_some(), live.contains(&id));
                }
                3 => {
                    let sq = SenderQp { sender: id, qp: arg - 1 };
                    let granted = s.on_credit_request(sq, arg as u16);
                    if granted.is_some() {
                        prop_assert!(s.is_active(sq), "grant on inactive QP {:?}", sq);
                    }
                    if !live.contains(&id) {
                        prop_assert!(granted.is_none(), "grant to departed sender {}", id);
                    }
                }
                _ => {
                    s.redistribute();
                    for &id in &live {
                        prop_assert!(active_count(&s, id) >= 1, "sender {} starved", id);
                    }
                }
            }
            let from_maps: usize = live.iter().map(|&id| active_count(&s, id)).sum();
            prop_assert_eq!(s.total_active(), from_maps, "total_active out of sync");
        }
    }
}

proptest! {
    /// Tenant share caps hold under arbitrary arrival/departure/cap
    /// interleavings: after every redistribution, each capped tenant's
    /// active total is at most `max(cap, senders_of_tenant)` (per-sender
    /// floors win over the cap), and the uncapped consistency invariants
    /// keep holding. This is satellite 2 of the gateway PR: the
    /// isolation property the tenant bench relies on, checked on the
    /// raw state machine.
    #[test]
    fn tenant_caps_hold_under_churn_interleavings(
        ops in vec((0u8..6, 0u32..6, 1usize..5), 1..64),
        max_aqp in 2usize..16,
    ) {
        let mut s = sched(max_aqp);
        let mut live: Vec<u32> = Vec::new();
        let mut caps: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for (op, id, arg) in ops {
            let tenant = id % 3; // a few tenants, senders spread across them
            match op {
                0 => {
                    if !live.contains(&id) {
                        s.register_sender_tenant(id, arg, tenant);
                        live.push(id);
                        prop_assert_eq!(s.tenant_of(id), Some(tenant));
                    }
                }
                1 => {
                    s.unregister_sender(id);
                    live.retain(|&x| x != id);
                }
                2 => {
                    let before = s.tenant_active(tenant);
                    if s.add_qp(id).is_some() {
                        if let Some(&cap) = caps.get(&tenant) {
                            // A lazily attached lane never pushes a
                            // capped tenant past its cap.
                            prop_assert!(
                                s.tenant_active(tenant) <= before.max(cap),
                                "add_qp grew tenant {} past cap {}", tenant, cap
                            );
                        }
                    }
                }
                3 => {
                    s.on_credit_request(SenderQp { sender: id, qp: arg - 1 }, arg as u16);
                }
                4 => {
                    s.set_tenant_cap(tenant, arg);
                    caps.insert(tenant, arg);
                    prop_assert_eq!(s.tenant_cap(tenant), Some(arg));
                }
                _ => {
                    s.redistribute();
                    for (&t, &cap) in &caps {
                        let senders = live.iter().filter(|&&x| x % 3 == t).count();
                        let effective = cap.max(senders);
                        prop_assert!(
                            s.tenant_active(t) <= effective,
                            "tenant {} holds {} active over effective cap {} ({} senders)",
                            t, s.tenant_active(t), effective, senders
                        );
                    }
                    for &x in &live {
                        prop_assert!(active_count(&s, x) >= 1, "sender {} starved", x);
                    }
                }
            }
            let from_maps: usize = live.iter().map(|&x| active_count(&s, x)).sum();
            prop_assert_eq!(s.total_active(), from_maps, "total_active out of sync");
            // The snapshot's per-tenant totals agree with the maps.
            let snap = s.fairness_snapshot();
            prop_assert_eq!(snap.total_active, from_maps);
            for row in &snap.tenants {
                prop_assert_eq!(
                    row.active_qps,
                    s.tenant_active(row.tenant),
                    "snapshot row for tenant {} out of sync", row.tenant
                );
            }
        }
    }

    /// Equal-weight tenants settle fair: identical sender/lane/load
    /// shapes per tenant must yield Jain's index ≥ 0.9 on active-QP
    /// shares in steady state (acceptance criterion of the tenant
    /// bench, checked on the state machine directly).
    #[test]
    fn equal_weight_tenants_settle_above_point_nine_jains(
        n_tenants in 2usize..6,
        senders_per_tenant in 1usize..4,
        n_qps in 1usize..6,
        load in 1u64..32,
        max_aqp in 4usize..64,
        intervals in 1usize..5,
    ) {
        let mut s = sched(max_aqp);
        let mut id = 0u32;
        for t in 0..n_tenants as u32 {
            for _ in 0..senders_per_tenant {
                s.register_sender_tenant(id, n_qps, t + 1);
                id += 1;
            }
        }
        for _ in 0..intervals {
            // Identical load: every sender reports `load` degree-1
            // renewals on each of its lanes.
            for sender in 0..id {
                for qp in 0..n_qps {
                    for _ in 0..load {
                        s.on_credit_request(SenderQp { sender, qp }, 1);
                    }
                }
            }
            s.redistribute();
        }
        let snap = s.fairness_snapshot();
        let j = snap.jains_active();
        prop_assert!(
            j >= 0.9,
            "equal-weight tenants settled unfair: Jain {} over {:?}",
            j, snap.tenants
        );
    }

    /// Budget safety with caps in play: the clamp pass reclaims lanes
    /// and the grant pass re-issues at most that many, so capped
    /// redistribution never exceeds the uncapped budget envelope.
    #[test]
    fn capped_redistribution_respects_global_budget(
        n_qps in vec(1usize..8, 2..10),
        util in vec(0u64..64, 2..10),
        max_aqp in 2usize..32,
        cap in 1usize..8,
    ) {
        let n = n_qps.len().min(util.len());
        let mut s = sched(max_aqp);
        for (i, &q) in n_qps.iter().take(n).enumerate() {
            // Two tenants: evens capped, odds free.
            s.register_sender_tenant(i as u32, q, (i % 2) as u32);
        }
        s.set_tenant_cap(0, cap);
        report(&mut s, &util[..n]);
        s.redistribute();

        let mut busy_total = 0usize;
        for i in 0..n {
            let a = active_count(&s, i as u32);
            prop_assert!(a >= 1, "sender {} starved", i);
            prop_assert!(a <= n_qps[i], "sender {} over its lanes", i);
            if util[i] > 0 {
                busy_total += a;
            }
        }
        let floors = util[..n].iter().filter(|&&u| u > 0).count();
        prop_assert!(
            busy_total <= max_aqp + floors,
            "busy shares {} blow the budget {} (+{} floors) with caps on",
            busy_total, max_aqp, floors
        );
        let evens = (0..n).filter(|i| i % 2 == 0).count();
        prop_assert!(
            s.tenant_active(0) <= cap.max(evens),
            "capped tenant holds {} over effective cap {}",
            s.tenant_active(0), cap.max(evens)
        );
    }
}

/// Build thread stats from raw (median, requests) pairs; ids are the
/// vector positions, bytes the product (what the sender tracker records).
fn threads_from(raw: &[(u32, u64)]) -> Vec<ThreadLoadStats> {
    raw.iter()
        .enumerate()
        .map(|(id, &(median, requests))| ThreadLoadStats {
            thread_id: id as u32,
            median_req_size: median,
            requests,
            bytes: u64::from(median) * requests,
        })
        .collect()
}

proptest! {
    /// Every thread is assigned exactly once to an in-range QP, and no
    /// active QP is left idle while another holds 2+ threads (the
    /// fairness goal — quota packing alone can strand lanes when one
    /// thread dominates the byte count).
    #[test]
    fn packing_is_total_in_range_and_fair(
        raw in vec((1u32..8192, 1u64..1000), 1..24),
        num_qps in 1usize..8,
    ) {
        let stats = threads_from(&raw);
        let assign = assign_threads(&stats, num_qps);
        prop_assert_eq!(assign.len(), stats.len());
        let mut counts = vec![0usize; num_qps];
        let mut seen = std::collections::HashSet::new();
        for &(id, qp) in &assign {
            prop_assert!(qp < num_qps, "QP {} out of range {}", qp, num_qps);
            prop_assert!(seen.insert(id), "thread {} assigned twice", id);
            counts[qp] += 1;
        }
        if stats.len() >= num_qps {
            prop_assert!(
                counts.iter().all(|&c| c > 0),
                "idle QP with {} threads on {} lanes: {:?}",
                stats.len(), num_qps, counts
            );
        }
    }

    /// Quota packing must not starve: one oversized thread exhausting
    /// the byte quota on the first lanes cannot pile every later thread
    /// onto the last QP. The small threads spread across the remaining
    /// lanes and never share a QP with the giant (head-of-line goal).
    #[test]
    fn oversized_thread_does_not_starve_later_threads(
        smalls in 2usize..16,
        num_qps in 3usize..8,
        small_median in 16u32..128,
        factor in 64u64..4096,
    ) {
        let mut stats: Vec<ThreadLoadStats> = (0..smalls as u32)
            .map(|id| ThreadLoadStats {
                thread_id: id,
                median_req_size: small_median,
                requests: 100,
                bytes: u64::from(small_median) * 100,
            })
            .collect();
        let giant_bytes = u64::from(small_median) * 100 * factor;
        stats.push(ThreadLoadStats {
            thread_id: smalls as u32,
            median_req_size: (giant_bytes / 100).min(u64::from(u32::MAX)) as u32,
            requests: 100,
            bytes: giant_bytes,
        });

        let assign = assign_threads(&stats, num_qps);
        let giant_qp = assign
            .iter()
            .find(|(id, _)| *id == smalls as u32)
            .unwrap()
            .1;
        let small_qps: Vec<usize> = assign
            .iter()
            .filter(|(id, _)| *id != smalls as u32)
            .map(|(_, q)| *q)
            .collect();
        // The giant sits alone.
        prop_assert!(
            small_qps.iter().all(|&q| q != giant_qp),
            "small thread shares QP {} with the giant: {:?}",
            giant_qp, assign
        );
        // And the smalls use the other lanes, not one crowded dump QP.
        let mut used: Vec<usize> = small_qps.clone();
        used.sort_unstable();
        used.dedup();
        let expect = (num_qps - 1).min(smalls);
        prop_assert!(
            used.len() >= expect.min(2),
            "{} small threads crowded onto {} of {} free lanes: {:?}",
            smalls, used.len(), num_qps - 1, assign
        );
    }
}
