//! Bounded-exhaustive model checking of the TCQ protocol.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p flock-core --test loom_tcq --release
//! ```
//!
//! (or `cargo loom`, the alias in `.cargo/config.toml`). Each test
//! explores *every* thread interleaving of a small TCQ scenario within
//! the preemption bound (`LOOM_MAX_PREEMPTIONS`, default 2), asserting
//! the protocol's safety properties on each one:
//!
//! * **Leader election** — of the threads racing `tail.swap`, exactly
//!   the one that observed a null tail leads; everyone else is either
//!   collected (`SENT`) or handed leadership (`LEADER`).
//! * **Exactly-once delivery** — every submitted item appears in
//!   exactly one completed batch, under any interleaving.
//! * **Batch bound** — no batch exceeds the configured limit.
//! * **Hand-off** — a leader completing with queued followers transfers
//!   leadership; nobody spins forever (the model's deadlock detector
//!   fails the test if the protocol can strand a thread).
//! * **Reclamation** — every node is retired exactly once (the
//!   `retire_node` sites, which recycle into the thread-local pool); a
//!   protocol double-free shows up as memory corruption or a failed
//!   item assertion under the model, recycle-reuse ABA is covered by
//!   `recycled_node_reuse_is_aba_safe`, and the Miri job covers the
//!   aliasing side (see DESIGN.md §5c).
//!
//! The scenarios are deliberately tiny (2–3 threads, 1–3 items each):
//! bounded-exhaustive checking is exponential in schedule points, and
//! the protocol's interesting races — swap vs. swap, link vs. collect,
//! CAS-close vs. late enqueue — all manifest with two or three threads.

#![cfg(loom)]

use flock_core::sync::{thread, Arc};
use flock_core::tcq::{Outcome, Tcq};

/// Drive one `join` to completion, returning the items this thread
/// delivered (empty if its item was coalesced into another's batch).
fn join_and_drive(tcq: &Tcq<u32>, item: u32) -> Vec<u32> {
    match tcq.join(item) {
        Outcome::Lead(mut batch) => {
            let items = batch.take_items();
            tcq.complete(batch);
            items
        }
        Outcome::Sent => Vec::new(),
    }
}

/// Two threads race `tail.swap` on an empty queue: exactly one wins
/// leadership for each batch, and both items are delivered exactly once
/// regardless of how the swap, link, collect, and complete interleave.
#[test]
fn leader_election_two_thread_exactly_once() {
    loom::model(|| {
        let tcq: Arc<Tcq<u32>> = Arc::new(Tcq::new(16));
        let handles: Vec<_> = (0..2u32)
            .map(|t| {
                let tcq = Arc::clone(&tcq);
                thread::spawn(move || join_and_drive(&tcq, t))
            })
            .collect();
        let mut delivered: Vec<u32> = Vec::new();
        for h in handles {
            delivered.extend(h.join().unwrap());
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![0, 1], "lost or duplicated item");
        assert_eq!(tcq.requests(), 2);
        assert!(tcq.batches() >= 1 && tcq.batches() <= 2);
    });
}

/// Follower hand-off: the main thread is the leader and holds its batch
/// open while a follower enqueues. On `complete`, the race between the
/// tail CAS-to-null and the follower's swap+link must end with the
/// follower either leading its own batch (`WAITING → LEADER`) — never
/// stranded, never collected twice.
#[test]
fn handoff_releases_enqueued_follower() {
    loom::model(|| {
        let tcq: Arc<Tcq<u32>> = Arc::new(Tcq::new(16));
        // Deterministic leader: the queue is empty, so join(0) must lead
        // a degree-1 batch (the follower has not spawned yet).
        let batch = match tcq.join(0) {
            Outcome::Lead(b) => b,
            Outcome::Sent => unreachable!("queue was empty"),
        };
        assert_eq!(batch.items(), &[0]);
        let follower = {
            let tcq = Arc::clone(&tcq);
            thread::spawn(move || join_and_drive(&tcq, 1))
        };
        // Complete while the follower is anywhere between "not yet
        // swapped" and "spinning on its own state": every interleaving
        // of the CAS-close race must hand off correctly.
        tcq.complete(batch);
        let theirs = follower.join().unwrap();
        // Nobody else could send item 1: our batch was collected before
        // the follower existed, so the follower must lead it itself.
        assert_eq!(theirs, vec![1], "follower was not handed leadership");
        assert_eq!(tcq.requests(), 2);
        assert_eq!(tcq.batches(), 2);
    });
}

/// Batch drain vs. concurrent enqueue: a held batch with two followers
/// arriving behind it. The hand-off target must collect (`SENT`) or
/// hand off to the remaining follower; all items are delivered exactly
/// once and every node is reclaimed by exactly one owner.
#[test]
fn drain_vs_concurrent_enqueue_two_followers() {
    loom::model(|| {
        let tcq: Arc<Tcq<u32>> = Arc::new(Tcq::new(16));
        let batch = match tcq.join(0) {
            Outcome::Lead(b) => b,
            Outcome::Sent => unreachable!("queue was empty"),
        };
        let handles: Vec<_> = (1..=2u32)
            .map(|t| {
                let tcq = Arc::clone(&tcq);
                thread::spawn(move || join_and_drive(&tcq, t))
            })
            .collect();
        tcq.complete(batch);
        let mut delivered = vec![0u32];
        for h in handles {
            delivered.extend(h.join().unwrap());
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![0, 1, 2], "lost or duplicated item");
        assert_eq!(tcq.requests(), 3);
    });
}

/// Node recycling is ABA-safe: a follower whose node was freed back to
/// the thread-local pool (on the `SENT` transition) immediately joins
/// again, so its *second* `join` reuses the same node address while the
/// original leader may still be anywhere inside `complete`. The
/// dangerous shape would be `complete`'s tail CAS comparing against a
/// pointer that was recycled into a *new* enqueue (classic ABA); the
/// protocol prevents it because the CAS happens strictly before any
/// `SENT` store, so no freed node can re-enter the queue while a CAS
/// could still compare against it (DESIGN.md §5c). Every interleaving
/// must deliver all three items exactly once.
#[test]
fn recycled_node_reuse_is_aba_safe() {
    loom::model(|| {
        let tcq: Arc<Tcq<u32>> = Arc::new(Tcq::new(16));
        let batch = match tcq.join(0) {
            Outcome::Lead(b) => b,
            Outcome::Sent => unreachable!("queue was empty"),
        };
        let follower = {
            let tcq = Arc::clone(&tcq);
            thread::spawn(move || {
                // First join: may be collected into the main thread's
                // batch (freeing this thread's node into its pool) or
                // handed leadership. Either way the second join runs
                // immediately after and — when pooling is on — reuses
                // the just-freed node address.
                let mut items = join_and_drive(&tcq, 1);
                items.extend(join_and_drive(&tcq, 2));
                items
            })
        };
        tcq.complete(batch);
        let mut delivered = vec![0u32];
        delivered.extend(follower.join().unwrap());
        delivered.sort_unstable();
        assert_eq!(delivered, vec![0, 1, 2], "ABA: lost or duplicated item");
        assert_eq!(tcq.requests(), 3);
    });
}

/// The batch limit holds under every interleaving: with limit 1 every
/// batch is degree 1, so each of the three requests (main + two
/// spawned) is sent by its own leader via a hand-off chain.
#[test]
fn batch_limit_one_forces_handoff_chain() {
    loom::model(|| {
        let tcq: Arc<Tcq<u32>> = Arc::new(Tcq::new(1));
        let handles: Vec<_> = (1..=2u32)
            .map(|t| {
                let tcq = Arc::clone(&tcq);
                thread::spawn(move || join_and_drive(&tcq, t))
            })
            .collect();
        let mut delivered = join_and_drive(&tcq, 0);
        assert!(delivered.len() <= 1, "batch limit 1 violated");
        for h in handles {
            let items = h.join().unwrap();
            assert!(items.len() <= 1, "batch limit 1 violated");
            delivered.extend(items);
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![0, 1, 2], "lost or duplicated item");
        assert_eq!(tcq.batches(), 3, "limit-1 batches must all be degree 1");
    });
}
