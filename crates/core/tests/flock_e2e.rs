//! End-to-end tests of the threaded Flock runtime: RPC with coalescing,
//! outstanding requests, one-sided memory/atomic operations, the manual
//! server API, credit renewal under sustained load, and thread migration.

use std::sync::Arc;
use std::time::Duration;

use flock_core::api::*;
use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::{ConnectionHandle, FlockDomain};

fn echo_server(domain: &FlockDomain, name: &str, cfg: ServerConfig) -> FlockServer {
    let node = domain.add_node(&format!("node-{name}"));
    let server = FlockServer::listen(domain, &node, name, cfg);
    server.reg_handler(1, |req| {
        let mut out = b"echo:".to_vec();
        out.extend_from_slice(req);
        out
    });
    server.reg_handler(2, |req| {
        // Sum of bytes, as a tiny compute handler.
        let s: u64 = req.iter().map(|&b| b as u64).sum();
        s.to_le_bytes().to_vec()
    });
    server
}

#[test]
fn single_thread_rpc_roundtrip() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s1", ServerConfig::default());
    let client = domain.add_node("c1");
    let handle = fl_connect(&domain, &client, "s1", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    for i in 0..50 {
        let msg = format!("msg-{i}");
        let resp = t.call(1, msg.as_bytes()).unwrap();
        assert_eq!(resp, format!("echo:{msg}").as_bytes());
    }
    server.shutdown(&domain);
}

#[test]
fn outstanding_requests_pipeline() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s2", ServerConfig::default());
    let client = domain.add_node("c2");
    let handle = fl_connect(&domain, &client, "s2", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    // Send 8 outstanding, then collect all (the paper's pipelined client).
    let seqs: Vec<u64> = (0..8)
        .map(|i| fl_send_rpc(&t, 1, format!("p{i}").as_bytes()).unwrap())
        .collect();
    for (i, seq) in seqs.into_iter().enumerate() {
        let resp = fl_recv_res(&t, seq).unwrap();
        assert_eq!(resp, format!("echo:p{i}").as_bytes());
    }
    server.shutdown(&domain);
}

#[test]
fn many_threads_share_qps() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s3", ServerConfig::default());
    let client = domain.add_node("c3");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 2; // 8 threads over 2 QPs: forced sharing
    let handle = Arc::new(fl_connect(&domain, &client, "s3", cfg).unwrap());
    let mut joins = Vec::new();
    for tid in 0..8 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..40 {
                let msg = format!("t{tid}-m{i}");
                let resp = t.call(1, msg.as_bytes()).unwrap();
                assert_eq!(resp, format!("echo:{msg}").as_bytes());
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // The server observed every request.
    assert_eq!(
        server
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        8 * 40
    );
    server.shutdown(&domain);
}

#[test]
fn coalescing_emerges_under_concurrency() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s4", ServerConfig::default());
    let client = domain.add_node("c4");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 1; // maximum contention on one QP
    cfg.auto_thread_sched = false;
    let handle = Arc::new(fl_connect(&domain, &client, "s4", cfg).unwrap());
    let mut joins = Vec::new();
    for _ in 0..6 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for _ in 0..100 {
                // 4 outstanding to create concurrency windows.
                let seqs: Vec<u64> = (0..4).map(|_| t.send_rpc(1, b"x").unwrap()).collect();
                for s in seqs {
                    t.recv_res(s).unwrap();
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // Some messages must have carried more than one request.
    let degree = handle.mean_coalescing_degree();
    assert!(degree > 1.0, "observed coalescing degree {degree}");
    // The server agrees.
    let server_degree = server.stats().mean_coalescing_degree();
    assert!(server_degree > 1.0, "server degree {server_degree}");
    server.shutdown(&domain);
}

#[test]
fn no_coalescing_config_sends_singletons() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s5", ServerConfig::default());
    let client = domain.add_node("c5");
    let mut cfg = HandleConfig::default();
    cfg.coalescing = false;
    cfg.n_qps = 1;
    let handle = Arc::new(fl_connect(&domain, &client, "s5", cfg).unwrap());
    let mut joins = Vec::new();
    for _ in 0..4 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for _ in 0..50 {
                t.call(1, b"y").unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let degree = handle.mean_coalescing_degree();
    assert!(
        (degree - 1.0).abs() < 1e-9,
        "coalescing disabled but degree {degree}"
    );
    server.shutdown(&domain);
}

#[test]
fn one_sided_memory_operations() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-mem");
    let server = FlockServer::listen(&domain, &node, "mem", ServerConfig::default());
    let mem_idx = fl_attach_mreg(&server, 1 << 20);
    assert_eq!(mem_idx, 0);
    // Pre-populate server memory directly.
    let mr = server.mem_region(0).unwrap();
    mr.write(100, b"server-data").unwrap();
    mr.write_u64(0, 41).unwrap();

    let client = domain.add_node("c-mem");
    let handle = fl_connect(&domain, &client, "mem", HandleConfig::default()).unwrap();
    let t = handle.register_thread();

    // Read.
    let data = fl_read(&t, 0, 100, 11).unwrap();
    assert_eq!(data, b"server-data");

    // Write then read back.
    fl_write(&t, 0, 500, b"client-wrote").unwrap();
    assert_eq!(mr.read_vec(500, 12).unwrap(), b"client-wrote");

    // Fetch-and-add.
    let old = fl_fetch_and_add(&t, 0, 0, 1).unwrap();
    assert_eq!(old, 41);
    assert_eq!(mr.read_u64(0).unwrap(), 42);

    // Compare-and-swap: success then failure.
    let old = fl_cmp_and_swap(&t, 0, 0, 42, 7).unwrap();
    assert_eq!(old, 42);
    let old = fl_cmp_and_swap(&t, 0, 0, 42, 99).unwrap();
    assert_eq!(old, 7);
    assert_eq!(mr.read_u64(0).unwrap(), 7);

    server.shutdown(&domain);
}

#[test]
fn mixed_rpc_and_memops_on_shared_qp() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-mix");
    let server = FlockServer::listen(&domain, &node, "mix", ServerConfig::default());
    server.reg_handler(1, |req| req.to_vec());
    fl_attach_mreg(&server, 4096);

    let client = domain.add_node("c-mix");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 1;
    let handle = Arc::new(fl_connect(&domain, &client, "mix", cfg).unwrap());
    let mut joins = Vec::new();
    for tid in 0..4u64 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                if (tid + i) % 2 == 0 {
                    let resp = t.call(1, &i.to_le_bytes()).unwrap();
                    assert_eq!(resp, i.to_le_bytes());
                } else {
                    let off = tid * 64;
                    t.write(0, off, &i.to_le_bytes()).unwrap();
                    let back = t.read(0, off, 8).unwrap();
                    assert_eq!(back, i.to_le_bytes());
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    server.shutdown(&domain);
}

#[test]
fn manual_rpc_api() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-manual");
    let server = Arc::new(FlockServer::listen(
        &domain,
        &node,
        "manual",
        ServerConfig::default(),
    ));
    // No handler registered for id 9: requests flow to the manual queue.
    let worker = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut served = 0;
            while served < 10 {
                if let Some(req) = fl_recv_rpc(&server, Duration::from_millis(100)) {
                    assert_eq!(req.rpc_id, 9);
                    let mut out = req.data.to_vec();
                    out.reverse();
                    fl_send_res(&server, req.token, &out).unwrap();
                    served += 1;
                }
            }
        })
    };
    let client = domain.add_node("c-manual");
    let handle = fl_connect(&domain, &client, "manual", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    for i in 0..10 {
        let msg = format!("abc{i}");
        let resp = t.call(9, msg.as_bytes()).unwrap();
        let mut expect = msg.into_bytes();
        expect.reverse();
        assert_eq!(resp, expect);
    }
    worker.join().unwrap();
    server.shutdown(&domain);
}

#[test]
fn credit_renewal_under_sustained_load() {
    let domain = FlockDomain::with_defaults();
    let mut scfg = ServerConfig::default();
    scfg.sched.grant_size = 8; // small credits force frequent renewals
    let server = echo_server(&domain, "s-credit", scfg);
    let client = domain.add_node("c-credit");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 1;
    let handle = fl_connect(&domain, &client, "s-credit", cfg).unwrap();
    let t = handle.register_thread();
    // 8 credits but 200 requests: at least ~20 renewals must be granted.
    for i in 0..200 {
        t.call(1, format!("{i}").as_bytes()).unwrap();
    }
    assert!(
        server
            .stats()
            .grants
            .load(std::sync::atomic::Ordering::Relaxed)
            > 5
    );
    server.shutdown(&domain);
}

#[test]
fn large_payloads_cross_ring_wrap() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-big", ServerConfig::default());
    let client = domain.add_node("c-big");
    let handle = fl_connect(&domain, &client, "s-big", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    // 8 KB payloads over a 64 KB ring: wraps are inevitable over 40 calls.
    for i in 0..40u8 {
        let payload = vec![i; 8 * 1024];
        let resp = t.call(1, &payload).unwrap();
        assert_eq!(resp.len(), 5 + payload.len());
        assert_eq!(&resp[..5], b"echo:");
        assert!(resp[5..].iter().all(|&b| b == i));
    }
    server.shutdown(&domain);
}

#[test]
fn two_clients_two_connections() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-multi", ServerConfig::default());
    let c1 = domain.add_node("mc1");
    let c2 = domain.add_node("mc2");
    let h1 = fl_connect(&domain, &c1, "s-multi", HandleConfig::default()).unwrap();
    let h2 = fl_connect(&domain, &c2, "s-multi", HandleConfig::default()).unwrap();
    assert_ne!(h1.sender_id(), h2.sender_id());
    let t1 = h1.register_thread();
    let t2 = h2.register_thread();
    let a = std::thread::spawn(move || {
        for _ in 0..50 {
            assert_eq!(t1.call(1, b"one").unwrap(), b"echo:one");
        }
    });
    for _ in 0..50 {
        assert_eq!(t2.call(1, b"two").unwrap(), b"echo:two");
    }
    a.join().unwrap();
    server.shutdown(&domain);
}

#[test]
fn unknown_server_fails_fast() {
    let domain = FlockDomain::with_defaults();
    let c = domain.add_node("lonely");
    let r = ConnectionHandle::connect(&domain, &c, "ghost", HandleConfig::default());
    assert!(r.is_err());
}

#[test]
fn compute_handler_and_thread_stats_flow() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-compute", ServerConfig::default());
    let client = domain.add_node("c-compute");
    let mut cfg = HandleConfig::default();
    cfg.sched_interval = Duration::from_millis(5);
    let handle = fl_connect(&domain, &client, "s-compute", cfg).unwrap();
    let t = handle.register_thread();
    let payload = vec![1u8; 100];
    let resp = t.call(2, &payload).unwrap();
    assert_eq!(u64::from_le_bytes(resp[..].try_into().unwrap()), 100);
    // Let the thread scheduler run at least once on live stats.
    std::thread::sleep(Duration::from_millis(30));
    assert!(handle.active_qps() >= 1);
    server.shutdown(&domain);
}

#[test]
fn unanswered_manual_request_times_out() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-timeout");
    let server = FlockServer::listen(&domain, &node, "timeout", ServerConfig::default());
    // rpc id 5 has no handler; nobody drains the manual queue.
    let client = domain.add_node("c-timeout");
    let mut cfg = HandleConfig::default();
    cfg.timeout = Duration::from_millis(150);
    let handle = fl_connect(&domain, &client, "timeout", cfg).unwrap();
    let t = handle.register_thread();
    let err = t.call(5, b"nobody answers").unwrap_err();
    assert!(matches!(err, flock_core::FlockError::Timeout));
    server.shutdown(&domain);
}

#[test]
fn multiple_memory_regions_are_addressable() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-regions");
    let server = FlockServer::listen(&domain, &node, "regions", ServerConfig::default());
    let a = fl_attach_mreg(&server, 4096);
    let b = fl_attach_mreg(&server, 4096);
    assert_ne!(a, b);
    server.mem_region(a).unwrap().write(0, b"region-a").unwrap();
    server.mem_region(b).unwrap().write(0, b"region-b").unwrap();

    let client = domain.add_node("c-regions");
    let handle = fl_connect(&domain, &client, "regions", HandleConfig::default()).unwrap();
    assert_eq!(handle.memory_regions().len(), 2);
    let t = handle.register_thread();
    assert_eq!(fl_read(&t, a, 0, 8).unwrap(), b"region-a");
    assert_eq!(fl_read(&t, b, 0, 8).unwrap(), b"region-b");
    // Out-of-range region index fails cleanly.
    assert!(fl_read(&t, 9, 0, 8).is_err());
    server.shutdown(&domain);
}

#[test]
fn single_qp_handle_works() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "one-qp", ServerConfig::default());
    let client = domain.add_node("c-onep");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 1;
    let handle = fl_connect(&domain, &client, "one-qp", cfg).unwrap();
    let t1 = handle.register_thread();
    let t2 = handle.register_thread();
    assert_eq!(t1.current_qp(), 0);
    assert_eq!(t2.current_qp(), 0);
    assert_eq!(t1.call(1, b"a").unwrap(), b"echo:a");
    assert_eq!(t2.call(1, b"b").unwrap(), b"echo:b");
    server.shutdown(&domain);
}

#[test]
fn zero_length_payload_roundtrip() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-empty");
    let server = FlockServer::listen(&domain, &node, "empty", ServerConfig::default());
    server.reg_handler(1, |req| {
        assert!(req.is_empty());
        Vec::new()
    });
    let client = domain.add_node("c-empty");
    let handle = fl_connect(&domain, &client, "empty", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    assert_eq!(t.call(1, b"").unwrap(), b"");
    server.shutdown(&domain);
}

#[test]
fn send_after_shutdown_is_disconnected() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-shut", ServerConfig::default());
    let client = domain.add_node("c-shut");
    let mut handle = fl_connect(&domain, &client, "s-shut", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    assert_eq!(t.call(1, b"x").unwrap(), b"echo:x");
    handle.shutdown();
    assert!(matches!(
        t.send_rpc(1, b"y"),
        Err(flock_core::FlockError::Disconnected)
    ));
    server.shutdown(&domain);
}

#[test]
fn concurrent_handles_from_one_node() {
    // One machine can open several connection handles (e.g., two apps);
    // the server sees them as distinct senders.
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-multi-h", ServerConfig::default());
    let client = domain.add_node("c-multi-h");
    let h1 = fl_connect(&domain, &client, "s-multi-h", HandleConfig::default()).unwrap();
    let h2 = fl_connect(&domain, &client, "s-multi-h", HandleConfig::default()).unwrap();
    assert_ne!(h1.sender_id(), h2.sender_id());
    let t1 = h1.register_thread();
    let t2 = h2.register_thread();
    assert_eq!(t1.call(1, b"app1").unwrap(), b"echo:app1");
    assert_eq!(t2.call(1, b"app2").unwrap(), b"echo:app2");
    server.shutdown(&domain);
}

#[test]
fn out_of_bounds_memop_fails_cleanly() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-oob");
    let server = FlockServer::listen(&domain, &node, "oob", ServerConfig::default());
    fl_attach_mreg(&server, 4096);
    let client = domain.add_node("c-oob");
    let mut cfg = HandleConfig::default();
    cfg.timeout = Duration::from_secs(2);
    let handle = fl_connect(&domain, &client, "oob", cfg).unwrap();
    let t = handle.register_thread();
    // Read past the end of the region: the NIC reports a remote access
    // error, which surfaces as RemoteOpFailed (not a hang, not a panic).
    let err = t.read(0, 4090, 64).unwrap_err();
    assert!(matches!(
        err,
        flock_core::FlockError::RemoteOpFailed(_) | flock_core::FlockError::Timeout
    ));
    server.shutdown(&domain);
}

#[test]
fn qp_deactivation_migrates_threads_on_the_real_stack() {
    // Receiver-side QP scheduling end to end: the server caps active QPs
    // at 2, the client opens 4. Renewals on the over-quota QPs are
    // declined, the client marks them inactive, Algorithm 1 migrates the
    // threads, and traffic keeps flowing on the surviving QPs.
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-deact");
    let mut scfg = ServerConfig::default();
    scfg.sched.max_aqp = 2;
    scfg.sched.grant_size = 8; // frequent renewals
    scfg.sched_interval = Duration::from_millis(5);
    let server = FlockServer::listen(&domain, &node, "deact", scfg);
    server.reg_handler(1, |req| req.to_vec());

    let client = domain.add_node("c-deact");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 4;
    cfg.sched_interval = Duration::from_millis(5);
    let handle = Arc::new(fl_connect(&domain, &client, "deact", cfg).unwrap());
    let mut joins = Vec::new();
    for _ in 0..4 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..300u32 {
                let resp = t.call(1, &i.to_le_bytes()).unwrap();
                assert_eq!(resp, i.to_le_bytes());
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // The server kept its budget; the client observed the declines.
    assert!(
        server.active_qps() <= 2,
        "server active={}",
        server.active_qps()
    );
    assert!(
        handle.active_qps() <= 3,
        "client active={}",
        handle.active_qps()
    );
    // New traffic still works after deactivation.
    let t = handle.register_thread();
    assert_eq!(t.call(1, b"post").unwrap(), b"post");
    server.shutdown(&domain);
}

#[test]
fn batched_memops_share_one_doorbell() {
    // Several threads submitting one-sided ops concurrently: the leader
    // links them into one post_send_many chain (paper §6).
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("srv-linked");
    let server = FlockServer::listen(&domain, &node, "linked", ServerConfig::default());
    fl_attach_mreg(&server, 1 << 16);
    let client = domain.add_node("c-linked");
    let mut cfg = HandleConfig::default();
    cfg.n_qps = 1; // force all threads through one TCQ
    let handle = Arc::new(fl_connect(&domain, &client, "linked", cfg).unwrap());
    let mut joins = Vec::new();
    for tid in 0..6u64 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let off = tid * 1024 + (i % 8) * 8;
                t.write(0, off, &(tid * 1000 + i).to_le_bytes()).unwrap();
                let back = t.read(0, off, 8).unwrap();
                assert_eq!(u64::from_le_bytes(back.try_into().unwrap()), tid * 1000 + i);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    server.shutdown(&domain);
}

#[test]
fn handle_metrics_snapshot_is_consistent() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-metrics", ServerConfig::default());
    let client = domain.add_node("c-metrics");
    let handle = fl_connect(&domain, &client, "s-metrics", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    for i in 0..40u32 {
        t.call(1, &i.to_le_bytes()).unwrap();
    }
    let m = handle.metrics();
    assert_eq!(m.requests, 40);
    assert!(m.messages >= 1 && m.messages <= 40);
    assert!((m.degree - m.requests as f64 / m.messages as f64).abs() < 1e-9);
    assert_eq!(m.threads, 1);
    assert!(m.active_qps >= 1);
    assert_eq!(m.per_qp.len(), 4);
    assert_eq!(m.per_qp.iter().map(|q| q.requests).sum::<u64>(), 40);
    server.shutdown(&domain);
}

#[test]
fn lazy_lanes_materialize_on_demand() {
    // Default config is lazy: `fl_connect` sets up a single control QP;
    // further lanes attach when threads land on them.
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-lazy", ServerConfig::default());
    let client = domain.add_node("c-lazy");
    let handle = fl_connect(&domain, &client, "s-lazy", HandleConfig::default()).unwrap();
    assert_eq!(handle.materialized_qps(), 1, "lazy connect starts with one lane");

    // Threads 0..4 hash onto lanes 0..4 (n_qps = 4): each registration
    // past the first materializes a lane before sending.
    let threads: Vec<_> = (0..4).map(|_| handle.register_thread()).collect();
    assert_eq!(handle.materialized_qps(), 4);
    for (i, t) in threads.iter().enumerate() {
        let msg = format!("lane-{i}");
        assert_eq!(t.call(1, msg.as_bytes()).unwrap(), format!("echo:{msg}").as_bytes());
    }
    server.shutdown(&domain);
}

#[test]
fn eager_connect_materializes_all_lanes() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-eager", ServerConfig::default());
    let client = domain.add_node("c-eager");
    let mut cfg = HandleConfig::default();
    cfg.eager_qps = true;
    let handle = fl_connect(&domain, &client, "s-eager", cfg).unwrap();
    assert_eq!(handle.materialized_qps(), 4);
    let t = handle.register_thread();
    assert_eq!(t.call(1, b"up").unwrap(), b"echo:up");
    server.shutdown(&domain);
}

#[test]
fn graceful_close_quiesces_and_recycles() {
    use flock_fabric::FabricConfig;
    // Elastic pools on: a closed connection's QPs and rings go back to
    // the node instead of being destroyed.
    let mut fc = FabricConfig::default();
    fc.qpool.enabled = true;
    fc.mr_cache.enabled = true;
    let domain = FlockDomain::new(fc);
    let server = echo_server(&domain, "s-close", ServerConfig::default());
    let client = domain.add_node("c-close");

    let mut h1 = fl_connect(&domain, &client, "s-close", HandleConfig::default()).unwrap();
    let t = h1.register_thread();
    for i in 0..20u32 {
        t.call(1, &i.to_le_bytes()).unwrap();
    }
    drop(t);
    fl_disconnect(&mut h1).unwrap();
    let recycled = client.pool().stats().recycled.load(std::sync::atomic::Ordering::Relaxed);
    assert!(recycled >= 1, "closed handle recycles its QPs, got {recycled}");

    // A second connection on the same node leases warm resources and the
    // server still serves it — nothing was wedged by the teardown.
    let mut h2 = fl_connect(&domain, &client, "s-close", HandleConfig::default()).unwrap();
    let t2 = h2.register_thread();
    assert_eq!(t2.call(1, b"again").unwrap(), b"echo:again");
    let warm = client.pool().stats().warm.load(std::sync::atomic::Ordering::Relaxed);
    assert!(warm >= 1, "second connect should hit the QP pool, got {warm}");
    drop(t2);
    fl_disconnect(&mut h2).unwrap();
    server.shutdown(&domain);
}

#[test]
fn close_is_idempotent_and_server_survives() {
    let domain = FlockDomain::with_defaults();
    let server = echo_server(&domain, "s-idem", ServerConfig::default());
    let client = domain.add_node("c-idem");
    let other = domain.add_node("c-idem-2");

    let keeper = fl_connect(&domain, &client, "s-idem", HandleConfig::default()).unwrap();
    let kt = keeper.register_thread();
    let mut goner = fl_connect(&domain, &other, "s-idem", HandleConfig::default()).unwrap();
    let gt = goner.register_thread();
    assert_eq!(gt.call(1, b"bye").unwrap(), b"echo:bye");
    drop(gt);
    assert!(goner.close().is_ok());
    // Second close is a no-op (already stopped), not a panic or hang.
    let _ = goner.close();

    // The surviving connection is unaffected by its neighbour's detach.
    for i in 0..10u32 {
        assert_eq!(kt.call(2, &[i as u8; 4]).unwrap().len(), 8);
    }
    server.shutdown(&domain);
}
