//! End-to-end tests of the one-sided fast path and the ALock:
//! export/lease discovery over the control plane, doorbell-batched
//! READ + version validation, torn-read retry against a concurrent
//! publisher, and cohort locking over a real remote CAS word.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flock_core::alock::{ALock, RemoteLockWord};
use flock_core::client::HandleConfig;
use flock_core::onesided::{OneSidedReader, SegmentWriter, SlotLayout};
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::{ConnectionHandle, FlockDomain};

/// A server with one exported value segment (`slots` × `val_cap`) and
/// one exported lock segment (8 words).
fn segment_server(
    domain: &FlockDomain,
    name: &str,
    val_cap: u32,
    slots: u32,
) -> (FlockServer, Arc<SegmentWriter>) {
    let node = domain.add_node(&format!("node-{name}"));
    let server = FlockServer::listen(domain, &node, name, ServerConfig::default());
    let layout = SlotLayout::for_value_cap(val_cap);
    let idx = server.attach_mreg(layout.stride as usize * slots as usize);
    let mr = server.mem_region(idx).expect("region");
    let writer = Arc::new(SegmentWriter::new(mr, 0, layout, slots).expect("writer"));
    server
        .export_segment("values", idx, layout.stride, slots, val_cap as u64)
        .expect("export");
    let lock_idx = server.attach_mreg(64);
    server.export_segment("locks", lock_idx, 8, 8, 0).expect("export");
    (server, writer)
}

#[test]
fn export_lease_roundtrip_and_filter() {
    let domain = FlockDomain::with_defaults();
    let (server, _writer) = segment_server(&domain, "exp", 64, 16);
    let client = domain.add_node("c-exp");
    let handle =
        ConnectionHandle::connect(&domain, &client, "exp", HandleConfig::default()).unwrap();
    let all = handle.fetch_exports(None).unwrap();
    assert_eq!(all.len(), 2);
    assert_eq!(all[0].name, "values");
    assert_eq!(all[1].name, "locks");
    let vals = handle.fetch_exports(Some("values")).unwrap();
    assert_eq!(vals.len(), 1);
    assert_eq!(vals[0].slots, 16);
    assert_eq!(vals[0].meta, 64);
    let layout = SlotLayout::from_lease(&vals[0]);
    assert_eq!(layout, SlotLayout::for_value_cap(64));
    assert!(handle.fetch_exports(Some("nope")).unwrap().is_empty());
    server.shutdown(&domain);
}

#[test]
fn one_sided_reads_see_published_values() {
    let domain = FlockDomain::with_defaults();
    let (server, writer) = segment_server(&domain, "os1", 64, 16);
    for s in 0..16u32 {
        writer.publish(s, format!("value-{s}").as_bytes()).unwrap();
    }
    let client = domain.add_node("c-os1");
    let handle =
        ConnectionHandle::connect(&domain, &client, "os1", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    let lease = handle.fetch_exports(Some("values")).unwrap().remove(0);
    let mut reader = OneSidedReader::new(lease).unwrap();
    let mut buf = vec![0u8; reader.layout().stride as usize];
    for s in 0..16u32 {
        let v = reader.read_slot(&t, s, &mut buf).unwrap();
        assert_eq!(v.word, 1, "first publish is version 1");
        assert_eq!(
            &buf[SlotLayout::HEADER..SlotLayout::HEADER + v.len],
            format!("value-{s}").as_bytes()
        );
    }
    // Republish and observe the version advance.
    writer.publish(3, b"updated").unwrap();
    let v = reader.read_slot(&t, 3, &mut buf).unwrap();
    assert_eq!(v.word, 2);
    assert_eq!(&buf[SlotLayout::HEADER..SlotLayout::HEADER + v.len], b"updated");
    let stats = reader.stats();
    assert_eq!(stats.reads, 17);
    assert_eq!(stats.failures, 0);
    server.shutdown(&domain);
}

#[test]
fn batched_reads_validate_every_slot() {
    let domain = FlockDomain::with_defaults();
    let (server, writer) = segment_server(&domain, "os2", 32, 8);
    for s in 0..8u32 {
        writer.publish(s, &[s as u8; 7]).unwrap();
    }
    let client = domain.add_node("c-os2");
    let handle =
        ConnectionHandle::connect(&domain, &client, "os2", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    let lease = handle.fetch_exports(Some("values")).unwrap().remove(0);
    let mut reader = OneSidedReader::new(lease).unwrap();
    let stride = reader.layout().stride as usize;
    let slots = [6u32, 0, 3];
    let mut buf = vec![0u8; stride * slots.len()];
    let mut out = Vec::new();
    reader.read_slots(&t, &slots, &mut buf, &mut out).unwrap();
    assert_eq!(out.len(), 3);
    for (i, &s) in slots.iter().enumerate() {
        assert_eq!(out[i].len, 7);
        let chunk = &buf[i * stride..][SlotLayout::HEADER..SlotLayout::HEADER + 7];
        assert_eq!(chunk, &[s as u8; 7]);
    }
    server.shutdown(&domain);
}

/// A reader racing a publisher never observes a torn value: every
/// validated read returns a complete published payload (all bytes from
/// the same publish), with retries absorbing in-flight snapshots.
#[test]
fn concurrent_publisher_never_yields_torn_reads() {
    let domain = FlockDomain::with_defaults();
    let (server, writer) = segment_server(&domain, "os3", 64, 2);
    writer.publish(0, &[0u8; 48]).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let (writer, stop) = (Arc::clone(&writer), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut fill = 1u8;
            while !stop.load(Ordering::Relaxed) {
                writer.publish(0, &[fill; 48]).unwrap();
                fill = fill.wrapping_add(1);
            }
        })
    };
    let client = domain.add_node("c-os3");
    let handle =
        ConnectionHandle::connect(&domain, &client, "os3", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    let lease = handle.fetch_exports(Some("values")).unwrap().remove(0);
    let mut reader = OneSidedReader::new(lease).unwrap().with_max_retries(1 << 20);
    let mut buf = vec![0u8; reader.layout().stride as usize];
    let mut last_word = 0;
    for _ in 0..200 {
        let v = reader.read_slot(&t, 0, &mut buf).unwrap();
        assert_eq!(v.len, 48, "torn length escaped validation");
        let val = &buf[SlotLayout::HEADER..SlotLayout::HEADER + v.len];
        assert!(
            val.iter().all(|&b| b == val[0]),
            "torn value escaped validation: {val:?}"
        );
        assert!(v.word >= last_word, "version went backwards");
        last_word = v.word;
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();
    server.shutdown(&domain);
}

/// Two client threads contend on an ALock whose global word is a real
/// exported server word: mutual exclusion is observable as exact
/// read-modify-write counts on a shared slot, and the cohort amortizes
/// remote CASes via local handoffs.
#[test]
fn alock_over_remote_cas_serializes_writers() {
    let domain = FlockDomain::with_defaults();
    let (server, writer) = segment_server(&domain, "al1", 16, 1);
    writer.publish(0, &0u64.to_le_bytes()).unwrap();
    let client = domain.add_node("c-al1");
    let handle = Arc::new(
        ConnectionHandle::connect(&domain, &client, "al1", HandleConfig::default()).unwrap(),
    );
    // Lock word: word 0 of the "locks" region (mem region index 1).
    let lock = Arc::new(ALock::new(8));
    const PER_THREAD: u64 = 40;
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let (handle, lock) = (Arc::clone(&handle), Arc::clone(&lock));
            std::thread::spawn(move || {
                let t = handle.register_thread();
                let word = RemoteLockWord::new(&t, 1, 0, handle.sender_id() as u64 + 1);
                for _ in 0..PER_THREAD {
                    let ticket = lock.acquire(&word).unwrap();
                    // Unprotected read-modify-write on server memory:
                    // only mutual exclusion makes the count exact.
                    let cur = t.read(0, SlotLayout::HEADER as u64, 8).unwrap();
                    let n = u64::from_le_bytes(cur[..8].try_into().unwrap());
                    t.write(0, SlotLayout::HEADER as u64, &(n + 1).to_le_bytes())
                        .unwrap();
                    lock.release(&word, ticket).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let t = handle.register_thread();
    let fin = t.read(0, SlotLayout::HEADER as u64, 8).unwrap();
    assert_eq!(
        u64::from_le_bytes(fin[..8].try_into().unwrap()),
        2 * PER_THREAD,
        "lost update: ALock failed to serialize"
    );
    assert_eq!(
        lock.remote_acquires() + lock.local_handoffs(),
        2 * PER_THREAD
    );
    server.shutdown(&domain);
}
