//! Property tests for the greedy-LPT dispatch partition
//! (`flock_core::lpt_partition`), the function behind
//! `rebalance_dispatch`. The invariants here are what the sharded
//! receive path relies on: every connection lands on exactly one
//! worker, no out-of-range worker index (even when workers exceed
//! connections or are zero), and the classic LPT load bound holds.

use flock_core::lpt_partition;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Every connection is assigned exactly once, to an in-range worker.
    #[test]
    fn assigns_every_connection_in_range(
        weights in vec(0usize..10_000, 0..64),
        workers in 0usize..16,
    ) {
        let assign = lpt_partition(&weights, workers);
        prop_assert_eq!(assign.len(), weights.len());
        let effective = workers.max(1);
        for &t in &assign {
            prop_assert!(t < effective, "worker {} out of range {}", t, effective);
        }
    }

    /// More workers than connections (including zero connections) must
    /// not panic and must leave the surplus workers empty-but-valid.
    #[test]
    fn workers_exceeding_connections_is_safe(
        weights in vec(1usize..100, 0..4),
        extra in 1usize..32,
    ) {
        let workers = weights.len() + extra;
        let assign = lpt_partition(&weights, workers);
        prop_assert_eq!(assign.len(), weights.len());
        // With more workers than items, greedy LPT gives every item its
        // own worker: no two items share one.
        let mut seen = std::collections::HashSet::new();
        for &t in &assign {
            prop_assert!(seen.insert(t), "worker {} assigned twice", t);
        }
    }

    /// Greedy-LPT bound: max load <= min load + max single weight. A
    /// violation means some connection could move to a lighter worker,
    /// i.e. the rebalancer left avoidable imbalance on the table.
    #[test]
    fn load_within_lpt_bound(
        weights in vec(1usize..10_000, 1..64),
        workers in 1usize..16,
    ) {
        let assign = lpt_partition(&weights, workers);
        let mut load = vec![0usize; workers];
        for (i, &t) in assign.iter().enumerate() {
            load[t] += weights[i];
        }
        let max_load = *load.iter().max().unwrap();
        let min_load = *load.iter().min().unwrap();
        let max_w = *weights.iter().max().unwrap();
        prop_assert!(
            max_load <= min_load + max_w,
            "max {} > min {} + heaviest {}",
            max_load, min_load, max_w
        );
    }

    /// Determinism: the partition is a pure function of its inputs (the
    /// virtual-time sweep depends on this — rebalance must not inject
    /// scheduling noise).
    #[test]
    fn partition_is_deterministic(
        weights in vec(0usize..1_000, 0..48),
        workers in 0usize..12,
    ) {
        prop_assert_eq!(
            lpt_partition(&weights, workers),
            lpt_partition(&weights, workers)
        );
    }
}
