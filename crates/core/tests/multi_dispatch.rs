//! Stress test for the sharded server dispatch path: many client nodes
//! fan in to one server running several dispatcher workers over a
//! multi-lane NIC, with per-request canary payloads validated end to end.
//!
//! What this exercises that `flock_e2e.rs` does not:
//!
//! * `ServerConfig::dispatch_threads > 1` — connections are partitioned
//!   across dispatcher workers, and the partition is re-cut whenever the
//!   QP scheduler redistributes active QPs mid-run.
//! * `FabricConfig::nic_lanes > 1` — request and response DMA for
//!   different QPs executes on different engine lanes concurrently.
//! * Cross-connection isolation — every response must answer its own
//!   request (the canary encodes client, thread, and sequence), so a
//!   dispatcher draining the wrong partition or a lane reordering one
//!   QP's writes shows up as a payload mismatch, not just a hang.

use std::sync::Arc;
use std::time::Duration;

use flock_core::api::*;
use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;

fn canary_server(domain: &FlockDomain, name: &str, cfg: ServerConfig) -> FlockServer {
    let node = domain.add_node(&format!("node-{name}"));
    let server = FlockServer::listen(domain, &node, name, cfg);
    // Echo with a marker so a short-circuited or misrouted response can
    // never masquerade as a correct one.
    server.reg_handler(7, |req| {
        let mut out = b"ok:".to_vec();
        out.extend_from_slice(req);
        out
    });
    server
}

/// 6 client nodes x 2 threads each, pipelined in windows of 4, against a
/// server with 4 dispatcher workers on a 4-lane NIC. Every canary comes
/// back intact and the server accounts for every request.
#[test]
fn fan_in_canaries_survive_sharded_dispatch() {
    let mut fab = FabricConfig::default();
    fab.nic_lanes = 4;
    let domain = FlockDomain::new(fab);

    let mut scfg = ServerConfig::default();
    scfg.dispatch_threads = 4;
    // Frequent redistribution so the dispatcher partition is re-cut
    // while traffic is in flight (exercises `rebalance_dispatch`).
    scfg.sched_interval = Duration::from_millis(5);
    let server = canary_server(&domain, "shard-srv", scfg);

    const CLIENTS: usize = 6;
    const THREADS: usize = 2;
    const ROUNDS: usize = 25;
    const WINDOW: usize = 4;

    let mut joins = Vec::new();
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let node = domain.add_node(&format!("mc-{client}"));
        let mut cfg = HandleConfig::default();
        cfg.n_qps = 2;
        let handle = Arc::new(fl_connect(&domain, &node, "shard-srv", cfg).expect("connect"));
        handles.push(Arc::clone(&handle));
        for thread in 0..THREADS {
            let t = handle.register_thread();
            joins.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let seqs: Vec<(u64, String)> = (0..WINDOW)
                        .map(|w| {
                            let canary = format!("canary-{client}-{thread}-{}", round * WINDOW + w);
                            let seq = t.send_rpc(7, canary.as_bytes()).expect("send");
                            (seq, canary)
                        })
                        .collect();
                    for (seq, canary) in seqs {
                        let resp = t.recv_res(seq).expect("recv");
                        assert_eq!(
                            resp,
                            format!("ok:{canary}").as_bytes(),
                            "client {client} thread {thread} got a foreign or corrupt response"
                        );
                    }
                }
            }));
        }
    }
    for j in joins {
        j.join().unwrap();
    }

    let total = (CLIENTS * THREADS * ROUNDS * WINDOW) as u64;
    assert_eq!(
        server
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        total
    );
    server.shutdown(&domain);
}

/// Degenerate-case guard: more dispatcher workers than connections, and
/// a single-lane NIC. Workers with an empty partition must idle quietly
/// while the one loaded worker serves everything.
#[test]
fn more_workers_than_connections() {
    let domain = FlockDomain::with_defaults();
    let mut scfg = ServerConfig::default();
    scfg.dispatch_threads = 8;
    let server = canary_server(&domain, "sparse-srv", scfg);

    let node = domain.add_node("mc-solo");
    let handle = fl_connect(&domain, &node, "sparse-srv", HandleConfig::default()).unwrap();
    let t = handle.register_thread();
    for i in 0..100 {
        let msg = format!("solo-{i}");
        let resp = t.call(7, msg.as_bytes()).unwrap();
        assert_eq!(resp, format!("ok:{msg}").as_bytes());
    }
    server.shutdown(&domain);
}
