//! Property-based tests of the ring framing protocol (`flock_core::ring`):
//! wrap-record/canary round-trips across the wrap boundary, and rejection
//! of torn or corrupt records.
//!
//! These complement the unit tests in `ring.rs` (which pin specific
//! geometries) by driving the producer/consumer pair through arbitrary
//! payload sequences on arbitrary small rings, so wrap records fall on
//! every possible alignment.

use proptest::collection::vec;
use proptest::prelude::*;

use flock_core::msg::{encode, EntryMeta, EntryRef, MsgHeader, HDR_SIZE, META_SIZE, TRAILER_SIZE};
use flock_core::ring::{RingConsumer, RingLayout, RingProducer, FLAG_WRAP};
use flock_fabric::{Access, MemoryRegion, MrTable};

/// Encode a one-entry message with `canary` into `buf`, returning its length.
fn mk_msg(buf: &mut [u8], canary: u64, payload: &[u8]) -> usize {
    encode(
        buf,
        &MsgHeader {
            total_len: 0,
            count: 0,
            flags: 0,
            canary,
            head: 0,
            aux: 0,
        },
        &[EntryRef {
            meta: EntryMeta {
                len: payload.len() as u32,
                thread_id: 1,
                seq: 1,
                rpc_id: 1,
            },
            data: payload,
        }],
    )
    .unwrap()
}

/// Reserve + "RDMA write" one message, returning whether a wrap record
/// was emitted.
fn deliver(mr: &MemoryRegion, prod: &mut RingProducer, canary: u64, payload: &[u8]) -> bool {
    let mut staging = vec![0u8; 8192];
    let n = mk_msg(&mut staging, canary, payload);
    let res = prod.reserve(n).unwrap();
    let wrapped = if let Some((woff, wlen)) = res.wrap {
        let rec = RingProducer::wrap_record(wlen, canary);
        mr.write(woff, &rec).unwrap();
        true
    } else {
        false
    };
    mr.write(res.offset, &staging[..n]).unwrap();
    wrapped
}

proptest! {
    /// Every payload sequence round-trips byte-identically through any
    /// small ring, including messages that cross the wrap boundary via a
    /// wrap record, and the consumed ring always drains back to empty.
    #[test]
    fn roundtrip_across_wrap_boundaries(
        cap_blocks in 2usize..8,
        sizes in vec(1usize..120, 1..60),
    ) {
        // An odd number of 64-byte blocks, so 128-byte records cannot tile
        // the ring exactly and the forced-wrap epilogue below terminates.
        let cap = (2 * cap_blocks + 1) * 64;
        let t = MrTable::new();
        let mr = t.register(cap, Access::REMOTE_ALL);
        let mut prod = RingProducer::new(RingLayout::new(0, cap));
        let mut cons = RingConsumer::new(RingLayout::new(0, cap));
        let mut wrapped = 0usize;
        for (i, &len) in sizes.iter().enumerate() {
            // Keep each message within the producer's size bound: the
            // *aligned* encoded size must satisfy aligned * 2 <= capacity.
            let max_aligned = cap / 128 * 64;
            let len = len.min(max_aligned - (HDR_SIZE + META_SIZE + TRAILER_SIZE));
            let payload: Vec<u8> = (0..len).map(|j| (i + j) as u8).collect();
            if deliver(&mr, &mut prod, i as u64 + 1, &payload) {
                wrapped += 1;
            }
            let m = cons.poll(&mr).unwrap().expect("delivered message");
            prop_assert_eq!(m.view().to_entries()[0].1, payload.as_slice());
            prop_assert_eq!(m.header().canary, i as u64 + 1);
            // Piggyback the head so the producer reuses freed space; this
            // is what forces wraps on longer sequences.
            prod.update_head(cons.head());
        }
        prop_assert!(cons.poll(&mr).unwrap().is_none(), "ring must drain empty");
        // Head and tail agree once everything is consumed.
        prop_assert_eq!(cons.head(), prod.tail());
        // If the random sizes happened to always tile the ring exactly,
        // force a wrap: 128-byte records marching through an odd-block
        // ring must eventually straddle the end.
        let mut forced = 0usize;
        while wrapped == 0 {
            forced += 1;
            prop_assert!(forced <= cap / 64, "forced wrap did not terminate");
            if deliver(&mr, &mut prod, 0xF0CE + forced as u64, &[0xA5]) {
                wrapped += 1;
            }
            let m = cons.poll(&mr).unwrap().expect("forced message");
            prop_assert_eq!(m.view().to_entries()[0].1, &[0xA5][..]);
            prod.update_head(cons.head());
        }
        prop_assert!(wrapped > 0, "wrap path was not exercised");
    }

    /// `wrap_record` framing is self-consistent for every legal length:
    /// FLAG_WRAP set, zero entries, canary mirrored head and trailer.
    #[test]
    fn wrap_record_framing(len_blocks in 1usize..64, canary in 1u64..) {
        let len = len_blocks * 64;
        let rec = RingProducer::wrap_record(len, canary);
        prop_assert_eq!(rec.len(), len);
        let total = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
        let count = u16::from_le_bytes(rec[4..6].try_into().unwrap());
        let flags = u16::from_le_bytes(rec[6..8].try_into().unwrap());
        let head_canary = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let trailer = u64::from_le_bytes(rec[len - 8..].try_into().unwrap());
        prop_assert_eq!(total, len);
        prop_assert_eq!(count, 0);
        prop_assert_eq!(flags & FLAG_WRAP, FLAG_WRAP);
        prop_assert_eq!(head_canary, canary);
        prop_assert_eq!(trailer, canary);
    }

    /// A torn message — any prefix of the full RDMA write, so the trailer
    /// canary has not landed — is never consumed and never advances the
    /// head; completing the write then delivers it intact.
    #[test]
    fn torn_record_is_not_consumed(
        payload in vec(any::<u8>(), 1..100),
        torn_at_permille in 0usize..1000,
    ) {
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        let mut cons = RingConsumer::new(RingLayout::new(0, 1024));
        let mut staging = vec![0u8; 1024];
        // Full-width canary, as real endpoints use: its high byte is
        // nonzero, so no strict prefix of the trailer can match it.
        let n = mk_msg(&mut staging, 0x5EED_0000_0000_0001, &payload);
        // Deliver only a prefix: somewhere strictly inside the record.
        let torn_at = 1 + torn_at_permille * (n - 1) / 1000;
        mr.write(0, &staging[..torn_at]).unwrap();
        let polled = cons.poll(&mr).unwrap();
        prop_assert!(polled.is_none(), "torn record consumed at cut {torn_at}/{n}");
        prop_assert_eq!(cons.head(), 0);
        // The rest of the write lands; now it must be consumed intact.
        mr.write(torn_at, &staging[torn_at..n]).unwrap();
        let m = cons.poll(&mr).unwrap().expect("completed record");
        prop_assert_eq!(m.view().to_entries()[0].1, payload.as_slice());
    }

    /// A torn or corrupt *wrap* record is skipped only once its trailer
    /// canary matches; until then the consumer stays parked before it.
    #[test]
    fn torn_wrap_record_parks_consumer(len_blocks in 1usize..8, canary in 1u64..) {
        let len = len_blocks * 64;
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        let mut cons = RingConsumer::new(RingLayout::new(0, 1024));
        let mut rec = RingProducer::wrap_record(len, canary);
        // Tear off the trailer: the consumer must not skip the record.
        rec[len - 8..].fill(0);
        mr.write(0, &rec).unwrap();
        prop_assert!(cons.poll(&mr).unwrap().is_none());
        prop_assert_eq!(cons.head(), 0);
        // Trailer lands; the record is skipped (head advances past it) and
        // the ring start is probed, which is empty.
        mr.write(len - 8, &canary.to_le_bytes()).unwrap();
        prop_assert!(cons.poll(&mr).unwrap().is_none());
        prop_assert_eq!(cons.head(), len as u64);
    }

    /// Corrupt record lengths — below the frame minimum or beyond the ring
    /// capacity — are reported as errors, never consumed or skipped.
    #[test]
    fn corrupt_length_is_rejected(raw_len in 1u32..) {
        let cap = 1024usize;
        let hdr = (HDR_SIZE + TRAILER_SIZE) as u32;
        let t = MrTable::new();
        let mr = t.register(cap, Access::REMOTE_ALL);
        let mut cons = RingConsumer::new(RingLayout::new(0, cap));
        mr.write(0, &raw_len.to_le_bytes()).unwrap();
        let ok_range = raw_len >= hdr && raw_len as usize <= cap;
        if !ok_range {
            prop_assert!(cons.poll(&mr).is_err(), "len {raw_len} accepted");
            prop_assert_eq!(cons.head(), 0);
        }
    }
}
