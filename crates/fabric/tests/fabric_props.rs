//! Property-based tests of the fabric's safety invariants: memory
//! translation bounds, cache behavior against a reference model, and
//! atomics linearization under arbitrary operation sequences.

use proptest::collection::vec;
use proptest::prelude::*;

use flock_fabric::cache::Eviction;
use flock_fabric::{Access, ConnCache, MrTable};

proptest! {
    /// `translate` accepts exactly the in-bounds ranges.
    #[test]
    fn mr_translate_is_exact(
        len in 1usize..10_000,
        off in 0u64..20_000,
        n in 0usize..20_000,
    ) {
        let t = MrTable::new();
        let mr = t.register(len, Access::REMOTE_ALL);
        let addr = mr.addr() + off;
        let ok = mr.translate(addr, n).is_ok();
        let expect = (off as usize) + n <= len;
        prop_assert_eq!(ok, expect, "off={} n={} len={}", off, n, len);
    }

    /// Reads and writes round-trip anywhere in bounds; out-of-bounds
    /// accesses error and leave the region unchanged.
    #[test]
    fn mr_rw_roundtrip(ops in vec((0u16..128, vec(any::<u8>(), 1..64)), 1..50)) {
        let t = MrTable::new();
        let mr = t.register(128, Access::REMOTE_ALL);
        let mut model = vec![0u8; 128];
        for (off, data) in ops {
            let off = off as usize;
            let r = mr.write(off, &data);
            if off + data.len() <= 128 {
                prop_assert!(r.is_ok());
                model[off..off + data.len()].copy_from_slice(&data);
            } else {
                prop_assert!(r.is_err());
            }
            let mut all = vec![0u8; 128];
            mr.read(0, &mut all).unwrap();
            prop_assert_eq!(&all, &model);
        }
    }

    /// The LRU cache agrees with a straightforward reference
    /// implementation on hits, misses, and residency.
    #[test]
    fn lru_cache_matches_reference(
        capacity in 1usize..32,
        keys in vec(0u64..64, 1..300),
    ) {
        let mut cache = ConnCache::new(capacity);
        // Reference: vec ordered MRU-first.
        let mut model: Vec<u64> = Vec::new();
        for key in keys {
            let hit = cache.access(key);
            let model_hit = model.contains(&key);
            prop_assert_eq!(hit, model_hit);
            model.retain(|&k| k != key);
            model.insert(0, key);
            model.truncate(capacity);
            prop_assert_eq!(cache.len(), model.len());
            for &k in &model {
                prop_assert!(cache.contains(k));
            }
        }
    }

    /// Random eviction never exceeds capacity and keeps every resident
    /// key accountable.
    #[test]
    fn random_cache_respects_capacity(
        capacity in 1usize..32,
        keys in vec(0u64..256, 1..300),
        seed in any::<u64>(),
    ) {
        let mut cache = ConnCache::with_policy(capacity, Eviction::Random, seed);
        let mut inserted = std::collections::HashSet::new();
        for key in keys {
            let hit = cache.access(key);
            if hit {
                prop_assert!(inserted.contains(&key));
            }
            inserted.insert(key);
            prop_assert!(cache.len() <= capacity);
            prop_assert!(cache.contains(key), "just-accessed key must be resident");
        }
    }

    /// Remote atomics on a region linearize: a fetch-add ladder sums
    /// correctly and CAS succeeds exactly when the expectation matches.
    #[test]
    fn atomics_linearize(ops in vec((any::<bool>(), 0u64..16), 1..100)) {
        let t = MrTable::new();
        let mr = t.register(64, Access::REMOTE_ALL);
        let mut model = 0u64;
        for (is_faa, arg) in ops {
            if is_faa {
                let old = mr.fetch_add_u64(0, arg).unwrap();
                prop_assert_eq!(old, model);
                model = model.wrapping_add(arg);
            } else {
                let old = mr.cmp_swap_u64(0, model, arg).unwrap();
                prop_assert_eq!(old, model);
                model = arg;
            }
            prop_assert_eq!(mr.read_u64(0).unwrap(), model);
        }
    }
}
