//! Bounded-exhaustive model checking of the completion-queue ring.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p flock-fabric --test loom_cq --release
//! ```
//!
//! (or `cargo loom`, the alias in `.cargo/config.toml`). Each scenario
//! explores *every* interleaving (within the preemption bound) of a tiny
//! producer/consumer workload on the Vyukov-style ring in
//! `crates/fabric/src/cq.rs`, asserting:
//!
//! * **Exactly-once delivery** — every pushed completion is polled
//!   exactly once, never duplicated, never lost.
//! * **Per-producer FIFO** — a single producer's completions are
//!   delivered in push order.
//! * **Wrap safety** — the sequence/recycle protocol stays correct when
//!   the cursors lap a capacity-2 ring, i.e. a producer claiming a cell
//!   one lap ahead can never overwrite a payload the consumer has not
//!   yet read (the ordering contract in the module docs).
//!
//! The scenarios deliberately stay below ring capacity so the spill
//! lane (a `parking_lot` mutex, invisible to the model scheduler) is
//! never engaged: loom checks the lock-free ring protocol, the plain
//! unit tests in `cq.rs` cover the spill semantics.

#![cfg(loom)]

use flock_fabric::{Completion, CompletionQueue, CqOpcode, CqStatus, QpNum, WrId};
use flock_sync::{thread, Arc};

fn comp(id: u64) -> Completion {
    Completion {
        wr_id: WrId(id),
        status: CqStatus::Success,
        opcode: CqOpcode::Send,
        byte_len: 0,
        imm: None,
        src: None,
        qpn: QpNum(0),
    }
}

/// Poll until `want` completions have been collected. The empty-poll
/// yield is voluntary, so the model scheduler never charges the spin
/// against the preemption bound and exploration terminates.
fn poll_exactly(cq: &CompletionQueue, want: usize) -> Vec<Completion> {
    let mut out = Vec::new();
    while out.len() < want {
        let remaining = want - out.len();
        if cq.poll(&mut out, remaining) == 0 {
            thread::yield_now();
        }
    }
    out
}

/// One producer, one consumer, capacity-2 ring: both completions are
/// delivered exactly once and in push order under every interleaving of
/// the claim CAS, the payload write, the publish store, the ready scan,
/// and the recycle store.
#[test]
fn spsc_delivers_in_order() {
    loom::model(|| {
        let cq = CompletionQueue::new(2);
        let prod = {
            let cq = Arc::clone(&cq);
            thread::spawn(move || {
                cq.push(comp(0));
                cq.push(comp(1));
            })
        };
        let got = poll_exactly(&cq, 2);
        prod.join().unwrap();
        let ids: Vec<u64> = got.iter().map(|c| c.wr_id.0).collect();
        assert_eq!(ids, [0, 1]);
        assert!(cq.is_empty());
        assert_eq!(cq.total_pushed(), 2);
    });
}

/// Capacity-2 ring pre-advanced one full lap, then raced: the concurrent
/// push/poll run happens at positions 2..4, so every cell is claimed,
/// published, read, and recycled *one lap ahead* of its initial sequence
/// while the race is in flight. A recycle-store or publish-store ordering
/// bug (producer overwriting an unread slot, consumer reading a stale
/// lap) shows up as a wrong id or a model-detected race.
#[test]
fn wrap_races_stay_exactly_once() {
    loom::model(|| {
        let cq = CompletionQueue::new(2);
        // Lap 0, single-threaded: advance both cursors past the array.
        cq.push(comp(10));
        cq.push(comp(11));
        let first = poll_exactly(&cq, 2);
        assert_eq!(
            first.iter().map(|c| c.wr_id.0).collect::<Vec<_>>(),
            [10, 11]
        );
        // Lap 1, raced.
        let prod = {
            let cq = Arc::clone(&cq);
            thread::spawn(move || {
                cq.push(comp(20));
                cq.push(comp(21));
            })
        };
        let got = poll_exactly(&cq, 2);
        prod.join().unwrap();
        let ids: Vec<u64> = got.iter().map(|c| c.wr_id.0).collect();
        assert_eq!(ids, [20, 21]);
        assert!(cq.is_empty());
    });
}

/// Two producers race the enqueue cursor; the consumer must see both
/// completions exactly once, in *some* order (the queue promises
/// delivery, not cross-producer order — consumers route by `wr_id`).
#[test]
fn two_producers_deliver_exactly_once() {
    loom::model(|| {
        let cq = CompletionQueue::new(4);
        let producers: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|id| {
                let cq = Arc::clone(&cq);
                thread::spawn(move || cq.push(comp(id)))
            })
            .collect();
        let got = poll_exactly(&cq, 2);
        for p in producers {
            p.join().unwrap();
        }
        let mut ids: Vec<u64> = got.iter().map(|c| c.wr_id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, [1, 2]);
        assert_eq!(cq.total_pushed(), 2);
        assert!(cq.is_empty());
    });
}
