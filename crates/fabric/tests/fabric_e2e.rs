//! End-to-end tests of the threaded fabric: every verb on every transport
//! it supports, error paths, and NIC cache accounting.

use std::time::Duration;

use flock_fabric::{
    Access, Fabric, FabricConfig, FabricError, QpState, RecvWr, RemoteAddr, SendWr, Sge, Transport,
    WrId, GRH_BYTES,
};

const TIMEOUT: Duration = Duration::from_secs(5);

/// Builds a two-node fabric with one connected QP pair of the given
/// transport and 4 KiB MRs on both sides.
struct Pair {
    fabric: Fabric,
    client: std::sync::Arc<flock_fabric::Node>,
    server: std::sync::Arc<flock_fabric::Node>,
    cmr: std::sync::Arc<flock_fabric::MemoryRegion>,
    smr: std::sync::Arc<flock_fabric::MemoryRegion>,
    ccq: std::sync::Arc<flock_fabric::CompletionQueue>,
    scq: std::sync::Arc<flock_fabric::CompletionQueue>,
    cqp: std::sync::Arc<flock_fabric::Qp>,
    sqp: std::sync::Arc<flock_fabric::Qp>,
}

fn pair(transport: Transport) -> Pair {
    let fabric = Fabric::with_defaults();
    let client = fabric.add_node("client");
    let server = fabric.add_node("server");
    let cmr = client.register_mr(4096, Access::REMOTE_ALL);
    let smr = server.register_mr(4096, Access::REMOTE_ALL);
    let ccq = client.create_cq(64);
    let scq = server.create_cq(64);
    let cqp = client.create_qp(transport, &ccq, &ccq);
    let sqp = server.create_qp(transport, &scq, &scq);
    if transport.connected() {
        fabric.connect(&cqp, &sqp).unwrap();
    } else {
        cqp.ready().unwrap();
        sqp.ready().unwrap();
    }
    Pair {
        fabric,
        client,
        server,
        cmr,
        smr,
        ccq,
        scq,
        cqp,
        sqp,
    }
}

#[test]
fn rc_write_moves_bytes() {
    let p = pair(Transport::Rc);
    p.cmr.write(0, b"flock").unwrap();
    p.cqp
        .post_send(SendWr::write(
            WrId(1),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 5,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr() + 100,
            },
        ))
        .unwrap();
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert!(c.is_ok());
    assert_eq!(p.smr.read_vec(100, 5).unwrap(), b"flock");
    // One-sided: the server CPU saw nothing.
    assert!(p.scq.is_empty());
}

#[test]
fn rc_read_fetches_bytes() {
    let p = pair(Transport::Rc);
    p.smr.write(200, b"remote-data").unwrap();
    p.cqp
        .post_send(SendWr::read(
            WrId(2),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr() + 50,
                len: 11,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr() + 200,
            },
        ))
        .unwrap();
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert!(c.is_ok());
    assert_eq!(p.cmr.read_vec(50, 11).unwrap(), b"remote-data");
}

#[test]
fn rc_fetch_add_and_cmp_swap() {
    let p = pair(Transport::Rc);
    p.smr.write_u64(8, 100).unwrap();
    p.cqp
        .post_send(SendWr::fetch_add(
            WrId(3),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 8,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr() + 8,
            },
            5,
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    assert_eq!(p.cmr.read_u64(0).unwrap(), 100); // old value returned
    assert_eq!(p.smr.read_u64(8).unwrap(), 105);

    p.cqp
        .post_send(SendWr::cmp_swap(
            WrId(4),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 8,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr() + 8,
            },
            105,
            42,
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    assert_eq!(p.smr.read_u64(8).unwrap(), 42);
}

#[test]
fn rc_send_recv_roundtrip() {
    let p = pair(Transport::Rc);
    p.sqp
        .post_recv(RecvWr {
            wr_id: WrId(100),
            local: Sge {
                lkey: p.smr.lkey(),
                addr: p.smr.addr(),
                len: 64,
            },
        })
        .unwrap();
    p.cmr.write(0, b"two-sided").unwrap();
    p.cqp
        .post_send(SendWr::send(
            WrId(5),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 9,
            },
        ))
        .unwrap();
    let send_c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert!(send_c.is_ok());
    let recv_c = p.scq.wait_one(TIMEOUT).unwrap();
    assert!(recv_c.is_ok());
    assert_eq!(recv_c.wr_id, WrId(100));
    assert_eq!(recv_c.byte_len, 9);
    assert_eq!(p.smr.read_vec(0, 9).unwrap(), b"two-sided");
}

#[test]
fn rc_send_without_recv_is_rnr_error() {
    let p = pair(Transport::Rc);
    p.cqp
        .post_send(SendWr::send(
            WrId(6),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 4,
            },
        ))
        .unwrap();
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert_eq!(c.status, flock_fabric::CqStatus::RnrRetryExceeded);
    assert_eq!(p.cqp.state(), QpState::Error);
    // Further posts are rejected at the API.
    assert!(matches!(
        p.cqp.post_send(SendWr::send(
            WrId(7),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 4,
            },
        )),
        Err(FabricError::InvalidState(QpState::Error))
    ));
}

#[test]
fn write_imm_delivers_immediate() {
    let p = pair(Transport::Rc);
    p.sqp
        .post_recv(RecvWr {
            wr_id: WrId(200),
            local: Sge {
                lkey: p.smr.lkey(),
                addr: p.smr.addr(),
                len: 0,
            },
        })
        .unwrap();
    p.cmr.write(0, b"imm-payload").unwrap();
    p.cqp
        .post_send(SendWr::write_imm(
            WrId(8),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 11,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr() + 500,
            },
            0xABCD,
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    let recv = p.scq.wait_one(TIMEOUT).unwrap();
    assert!(recv.is_ok());
    assert_eq!(recv.imm, Some(0xABCD));
    assert_eq!(recv.opcode, flock_fabric::CqOpcode::RecvImm);
    assert_eq!(p.smr.read_vec(500, 11).unwrap(), b"imm-payload");
}

#[test]
fn remote_access_violation_errors_the_qp() {
    let fabric = Fabric::with_defaults();
    let client = fabric.add_node("c");
    let server = fabric.add_node("s");
    let cmr = client.register_mr(64, Access::LOCAL);
    // Server region lacks REMOTE_WRITE.
    let smr = server.register_mr(64, Access::REMOTE_READ);
    let ccq = client.create_cq(8);
    let scq = server.create_cq(8);
    let cqp = client.create_qp(Transport::Rc, &ccq, &ccq);
    let sqp = server.create_qp(Transport::Rc, &scq, &scq);
    fabric.connect(&cqp, &sqp).unwrap();
    cqp.post_send(SendWr::write(
        WrId(9),
        Sge {
            lkey: cmr.lkey(),
            addr: cmr.addr(),
            len: 8,
        },
        RemoteAddr {
            rkey: smr.rkey(),
            addr: smr.addr(),
        },
    ))
    .unwrap();
    let c = ccq.wait_one(TIMEOUT).unwrap();
    assert_eq!(c.status, flock_fabric::CqStatus::RemoteAccessError);
    assert_eq!(cqp.state(), QpState::Error);
}

#[test]
fn ud_send_includes_grh_and_src() {
    let p = pair(Transport::Ud);
    p.sqp
        .post_recv(RecvWr {
            wr_id: WrId(300),
            local: Sge {
                lkey: p.smr.lkey(),
                addr: p.smr.addr(),
                len: 128,
            },
        })
        .unwrap();
    p.cmr.write(0, b"datagram").unwrap();
    p.cqp
        .post_send(SendWr::send_to(
            WrId(10),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 8,
            },
            (p.server.id(), p.sqp.qpn()),
        ))
        .unwrap();
    let recv = p.scq.wait_one(TIMEOUT).unwrap();
    assert!(recv.is_ok());
    assert_eq!(recv.byte_len, 8 + GRH_BYTES);
    assert_eq!(recv.src, Some((p.client.id(), p.cqp.qpn())));
    assert_eq!(p.smr.read_vec(GRH_BYTES, 8).unwrap(), b"datagram");
}

#[test]
fn ud_without_recv_buffer_drops_silently() {
    let p = pair(Transport::Ud);
    p.cqp
        .post_send(SendWr::send_to(
            WrId(11),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 8,
            },
            (p.server.id(), p.sqp.qpn()),
        ))
        .unwrap();
    // Sender still completes successfully — UD gives no delivery guarantee.
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert!(c.is_ok());
    assert!(p.scq.wait_one(Duration::from_millis(50)).is_none());
    assert_eq!(
        p.client
            .stats()
            .ud_drops
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn ud_rejects_oversized_and_one_sided() {
    let p = pair(Transport::Ud);
    let big = Sge {
        lkey: p.cmr.lkey(),
        addr: p.cmr.addr(),
        len: 5000,
    };
    assert!(matches!(
        p.cqp
            .post_send(SendWr::send_to(WrId(12), big, (p.server.id(), p.sqp.qpn()))),
        Err(FabricError::PayloadTooLarge { .. })
    ));
    assert!(matches!(
        p.cqp.post_send(SendWr::read(
            WrId(13),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 8,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        )),
        Err(FabricError::UnsupportedVerb { .. })
    ));
}

#[test]
fn ud_loss_injection_drops_packets() {
    let mut config = FabricConfig::default();
    config.ud_drop_probability = 1.0;
    let fabric = Fabric::new(config);
    let a = fabric.add_node("a");
    let b = fabric.add_node("b");
    let amr = a.register_mr(64, Access::LOCAL);
    let bmr = b.register_mr(128, Access::LOCAL);
    let acq = a.create_cq(8);
    let bcq = b.create_cq(8);
    let aqp = a.create_qp(Transport::Ud, &acq, &acq);
    let bqp = b.create_qp(Transport::Ud, &bcq, &bcq);
    aqp.ready().unwrap();
    bqp.ready().unwrap();
    bqp.post_recv(RecvWr {
        wr_id: WrId(1),
        local: Sge {
            lkey: bmr.lkey(),
            addr: bmr.addr(),
            len: 128,
        },
    })
    .unwrap();
    aqp.post_send(SendWr::send_to(
        WrId(2),
        Sge {
            lkey: amr.lkey(),
            addr: amr.addr(),
            len: 8,
        },
        (b.id(), bqp.qpn()),
    ))
    .unwrap();
    assert!(acq.wait_one(TIMEOUT).unwrap().is_ok());
    assert!(bcq.wait_one(Duration::from_millis(50)).is_none());
}

#[test]
fn uc_supports_write_but_not_read() {
    let p = pair(Transport::Uc);
    p.cmr.write(0, b"uc").unwrap();
    p.cqp
        .post_send(SendWr::write(
            WrId(14),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 2,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    assert_eq!(p.smr.read_vec(0, 2).unwrap(), b"uc");
    assert!(matches!(
        p.cqp.post_send(SendWr::read(
            WrId(15),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 2,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        )),
        Err(FabricError::UnsupportedVerb { .. })
    ));
}

#[test]
fn unsignaled_sends_complete_silently() {
    let p = pair(Transport::Rc);
    for i in 0..3 {
        p.cqp
            .post_send(
                SendWr::write(
                    WrId(i),
                    Sge {
                        lkey: p.cmr.lkey(),
                        addr: p.cmr.addr(),
                        len: 4,
                    },
                    RemoteAddr {
                        rkey: p.smr.rkey(),
                        addr: p.smr.addr(),
                    },
                )
                .unsignaled(),
            )
            .unwrap();
    }
    // Fourth, signaled write acts as the fence.
    p.cqp
        .post_send(SendWr::write(
            WrId(99),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 4,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        ))
        .unwrap();
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert_eq!(c.wr_id, WrId(99));
    assert!(p.ccq.is_empty());
}

#[test]
fn nic_cache_records_connection_accesses() {
    let p = pair(Transport::Rc);
    p.cqp
        .post_send(SendWr::write(
            WrId(16),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 4,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    let client_cache = p.client.cache().lock();
    let server_cache = p.server.cache().lock();
    assert!(client_cache.hits() + client_cache.misses() >= 1);
    assert!(server_cache.hits() + server_cache.misses() >= 1);
}

#[test]
fn posts_after_shutdown_fail() {
    let p = pair(Transport::Rc);
    p.fabric.shutdown();
    let r = p.cqp.post_send(SendWr::write(
        WrId(17),
        Sge {
            lkey: p.cmr.lkey(),
            addr: p.cmr.addr(),
            len: 4,
        },
        RemoteAddr {
            rkey: p.smr.rkey(),
            addr: p.smr.addr(),
        },
    ));
    assert!(matches!(r, Err(FabricError::Shutdown)));
}

#[test]
fn connect_rejects_mismatched_transports() {
    let fabric = Fabric::with_defaults();
    let a = fabric.add_node("a");
    let b = fabric.add_node("b");
    let cq = a.create_cq(4);
    let cq2 = b.create_cq(4);
    let qa = a.create_qp(Transport::Rc, &cq, &cq);
    let qb = b.create_qp(Transport::Uc, &cq2, &cq2);
    assert!(fabric.connect(&qa, &qb).is_err());
}

#[test]
fn many_nodes_many_qps() {
    let fabric = Fabric::with_defaults();
    let server = fabric.add_node("server");
    let scq = server.create_cq(1024);
    let smr = server.register_mr(1 << 16, Access::REMOTE_ALL);
    let mut clients = Vec::new();
    for i in 0..8 {
        let c = fabric.add_node(&format!("c{i}"));
        let mr = c.register_mr(64, Access::LOCAL);
        mr.write_u64(0, i as u64).unwrap();
        let cq = c.create_cq(16);
        let qp = c.create_qp(Transport::Rc, &cq, &cq);
        let sqp = server.create_qp(Transport::Rc, &scq, &scq);
        fabric.connect(&qp, &sqp).unwrap();
        clients.push((c, mr, cq, qp));
    }
    for (i, (_c, mr, _cq, qp)) in clients.iter().enumerate() {
        qp.post_send(SendWr::write(
            WrId(i as u64),
            Sge {
                lkey: mr.lkey(),
                addr: mr.addr(),
                len: 8,
            },
            RemoteAddr {
                rkey: smr.rkey(),
                addr: smr.addr() + (i as u64) * 8,
            },
        ))
        .unwrap();
    }
    for (_c, _mr, cq, _qp) in &clients {
        assert!(cq.wait_one(TIMEOUT).unwrap().is_ok());
    }
    for i in 0..8 {
        assert_eq!(smr.read_u64(i * 8).unwrap(), i as u64);
    }
    assert_eq!(server.qp_count(), 8);
}

#[test]
fn destroyed_qp_is_gone_and_cache_invalidated() {
    let p = pair(Transport::Rc);
    let qpn = p.sqp.qpn();
    // Seed the cache with the QP's state.
    p.cmr.write(0, b"x").unwrap();
    p.cqp
        .post_send(SendWr::write(
            WrId(1),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 1,
            },
            RemoteAddr {
                rkey: p.smr.rkey(),
                addr: p.smr.addr(),
            },
        ))
        .unwrap();
    assert!(p.ccq.wait_one(TIMEOUT).unwrap().is_ok());
    assert!(p
        .server
        .cache()
        .lock()
        .contains(flock_fabric::qp_state_key(p.server.id().0, qpn.0)));
    // Destroy: lookup fails, cache entry gone, double-destroy is false.
    assert!(p.server.destroy_qp(qpn));
    assert!(p.server.qp(qpn).is_none());
    assert!(!p
        .server
        .cache()
        .lock()
        .contains(flock_fabric::qp_state_key(p.server.id().0, qpn.0)));
    assert!(!p.server.destroy_qp(qpn));
    assert_eq!(p.server.qp_count(), 0);
}

#[test]
fn deregistered_mr_rejects_remote_access() {
    let p = pair(Transport::Rc);
    let rkey = p.smr.rkey();
    assert!(p.server.mrs().deregister(p.smr.lkey()));
    assert!(!p.server.mrs().deregister(p.smr.lkey()));
    p.cmr.write(0, b"y").unwrap();
    p.cqp
        .post_send(SendWr::write(
            WrId(2),
            Sge {
                lkey: p.cmr.lkey(),
                addr: p.cmr.addr(),
                len: 1,
            },
            RemoteAddr {
                rkey,
                addr: p.smr.addr(),
            },
        ))
        .unwrap();
    let c = p.ccq.wait_one(TIMEOUT).unwrap();
    assert_eq!(c.status, flock_fabric::CqStatus::RemoteAccessError);
}

#[test]
fn multi_lane_engine_preserves_per_qp_fifo() {
    // 4 lanes, 8 QPs fanned in to one server node: writes on each QP
    // must land in posting order (per-QP FIFO), regardless of which
    // lane executes which QP.
    let mut cfg = FabricConfig::default();
    cfg.nic_lanes = 4;
    let fabric = Fabric::new(cfg);
    let server = fabric.add_node("server");
    let scq = server.create_cq(1024);
    let smr = server.register_mr(1 << 16, Access::REMOTE_ALL);
    let mut clients = Vec::new();
    for i in 0..8u64 {
        let c = fabric.add_node(&format!("c{i}"));
        let mr = c.register_mr(4096, Access::LOCAL);
        let cq = c.create_cq(256);
        let qp = c.create_qp(Transport::Rc, &cq, &cq);
        let sqp = server.create_qp(Transport::Rc, &scq, &scq);
        fabric.connect(&qp, &sqp).unwrap();
        clients.push((c, mr, cq, qp));
    }
    // Each client posts 64 sequenced writes to its own slot; only the
    // last is signaled, so completion implies all earlier writes (FIFO)
    // have executed.
    for (i, (_c, mr, _cq, qp)) in clients.iter().enumerate() {
        for n in 0..64u64 {
            mr.write_u64((n as usize % 16) * 8, (i as u64) << 32 | n)
                .unwrap();
            let mut wr = SendWr::write(
                WrId(n),
                Sge {
                    lkey: mr.lkey(),
                    addr: mr.addr() + (n % 16) * 8,
                    len: 8,
                },
                RemoteAddr {
                    rkey: smr.rkey(),
                    addr: smr.addr() + (i as u64) * 8,
                },
            );
            if n != 63 {
                wr = wr.unsignaled();
            }
            qp.post_send(wr).unwrap();
        }
    }
    for (i, (_c, _mr, cq, _qp)) in clients.iter().enumerate() {
        assert!(cq.wait_one(TIMEOUT).unwrap().is_ok());
        // FIFO: the final value in the server slot is the last write.
        assert_eq!(smr.read_u64(i * 8).unwrap(), (i as u64) << 32 | 63);
    }
}

// ---- Elastic control plane: QP pool + MR cache ----

fn elastic_fabric() -> Fabric {
    let mut cfg = FabricConfig::default();
    cfg.qpool.enabled = true;
    cfg.qpool.capacity = 8;
    cfg.mr_cache.enabled = true;
    cfg.mr_cache.capacity = 8;
    Fabric::new(cfg)
}

#[test]
fn warm_lease_recycles_the_same_qp() {
    let fabric = elastic_fabric();
    let node = fabric.add_node("n");
    let cq1 = node.create_cq(16);
    let qp = node.lease_qp(Transport::Rc, &cq1, &cq1);
    let qpn = qp.qpn();
    assert_eq!(node.pool().stats().cold.load(std::sync::atomic::Ordering::Relaxed), 1);
    node.release_qp(&qp);
    assert_eq!(node.pool().len(), 1);
    drop(qp);
    let cq2 = node.create_cq(16);
    let qp2 = node.lease_qp(Transport::Rc, &cq2, &cq2);
    assert_eq!(qp2.qpn(), qpn, "pool recycles the QP, preserving its QPN");
    assert_eq!(qp2.state(), QpState::Init);
    assert!(qp2.remote().is_none());
    assert_eq!(node.pool().stats().warm.load(std::sync::atomic::Ordering::Relaxed), 1);
    // The recycled QP is rebound to the new lessee's CQ.
    assert!(std::sync::Arc::ptr_eq(&qp2.send_cq(), &cq2));
}

#[test]
fn stale_work_from_a_previous_lease_is_dropped() {
    let fabric = elastic_fabric();
    let a = fabric.add_node("a");
    let b = fabric.add_node("b");
    let amr = a.register_mr(4096, Access::LOCAL);
    let bmr = b.register_mr(4096, Access::REMOTE_ALL);
    let acq = a.create_cq(16);
    let bcq = b.create_cq(16);
    let aqp = a.lease_qp(Transport::Rc, &acq, &acq);
    let bqp = b.create_qp(Transport::Rc, &bcq, &bcq);
    flock_fabric::connect_qps(&aqp, &bqp).unwrap();
    amr.write(0, b"first").unwrap();
    let wr = SendWr::write(
        WrId(1),
        Sge { lkey: amr.lkey(), addr: amr.addr(), len: 5 },
        RemoteAddr { rkey: bmr.rkey(), addr: bmr.addr() },
    );
    aqp.post_send(wr).unwrap();
    assert!(acq.wait_one(TIMEOUT).unwrap().is_ok());
    // Reset bumps the epoch: a WR stamped with the old epoch that the
    // engine sees afterwards must be silently dropped, not executed
    // against whatever the QP is connected to next.
    a.release_qp(&aqp);
    let aqp2 = a.lease_qp(Transport::Rc, &acq, &acq);
    assert!(std::sync::Arc::ptr_eq(&aqp, &aqp2), "recycled");
    let b2cq = b.create_cq(16);
    let b2qp = b.create_qp(Transport::Rc, &b2cq, &b2cq);
    flock_fabric::connect_qps(&aqp2, &b2qp).unwrap();
    // Posting on the new lease works; the old lease's epoch is gone.
    amr.write(0, b"again").unwrap();
    let wr2 = SendWr::write(
        WrId(2),
        Sge { lkey: amr.lkey(), addr: amr.addr(), len: 5 },
        RemoteAddr { rkey: bmr.rkey(), addr: bmr.addr() },
    );
    aqp2.post_send(wr2).unwrap();
    assert!(acq.wait_one(TIMEOUT).unwrap().is_ok());
    assert_eq!(bmr.read_vec(0, 5).unwrap(), b"again");
}

#[test]
fn disabled_pool_destroys_on_release() {
    let fabric = Fabric::with_defaults();
    let node = fabric.add_node("n");
    let cq = node.create_cq(16);
    let qp = node.lease_qp(Transport::Rc, &cq, &cq);
    let qpn = qp.qpn();
    node.release_qp(&qp);
    assert_eq!(node.pool().len(), 0);
    assert!(node.qp(qpn).is_none(), "destroyed, not pooled");
}

#[test]
fn pool_capacity_bounds_recycling() {
    let fabric = elastic_fabric(); // capacity 8
    let node = fabric.add_node("n");
    let cq = node.create_cq(16);
    let qps: Vec<_> = (0..12).map(|_| node.lease_qp(Transport::Rc, &cq, &cq)).collect();
    for qp in &qps {
        node.release_qp(qp);
    }
    assert_eq!(node.pool().len(), 8);
    assert_eq!(
        node.pool().stats().discarded.load(std::sync::atomic::Ordering::Relaxed),
        4
    );
}

#[test]
fn prewarm_and_refill_counters() {
    let fabric = elastic_fabric();
    let node = fabric.add_node("n");
    assert_eq!(node.prewarm_qps(4), 4);
    assert_eq!(node.pool().len(), 4);
    let cq = node.create_cq(16);
    let qp = node.lease_qp(Transport::Rc, &cq, &cq);
    assert_eq!(node.pool().stats().warm.load(std::sync::atomic::Ordering::Relaxed), 1);
    node.release_qp(&qp);
}

#[test]
fn mr_cache_reuses_and_zeroes() {
    let fabric = elastic_fabric();
    let node = fabric.add_node("n");
    let mr = node.acquire_mr(1024, Access::REMOTE_WRITE);
    assert_eq!(node.mr_cache().lock().misses(), 1);
    mr.write(0, b"dirty").unwrap();
    let lkey = mr.lkey();
    node.release_mr(&mr);
    drop(mr);
    let mr2 = node.acquire_mr(1024, Access::REMOTE_WRITE);
    assert_eq!(mr2.lkey(), lkey, "same registration reused");
    assert_eq!(node.mr_cache().lock().hits(), 1);
    // Reuse zeroes the buffer: stale ring canaries must not survive.
    assert_eq!(mr2.read_vec(0, 5).unwrap(), vec![0u8; 5]);
    // A different layout still registers cold.
    let other = node.acquire_mr(2048, Access::REMOTE_WRITE);
    assert_ne!(other.lkey(), lkey);
    assert_eq!(node.mr_cache().lock().misses(), 2);
}
