//! The per-node queue-pair pool.
//!
//! QP creation is a control-plane operation orders of magnitude slower
//! than the data path (Swift, PAPERS.md): the NIC allocates connection
//! state over PCIe config cycles and the driver round-trips the kernel.
//! Under connect/disconnect churn that cost lands on every arriving
//! client's time-to-first-RPC. The pool removes it from the hot path:
//! released QPs are *reset* (verbs modify-to-RESET — state back to
//! `Init`, peer cleared, lease epoch bumped) instead of destroyed, and
//! the next lease recycles one by rebinding its CQs — paying
//! [`CostModel::ctrl_reset_qp_ns`](crate::CostModel) instead of
//! [`CostModel::ctrl_create_qp_ns`](crate::CostModel).
//!
//! A background refill task (spawned through the clock seam when
//! `low_watermark > 0`) tops the pool back up off the connect path, so a
//! connect storm that drains the free list returns to warm leases
//! without any client paying the creation cost.
//!
//! `take`/`put` are allocation-free (`cargo xtask lint` hot-alloc entry
//! points via [`Node::lease_qp`](crate::Node::lease_qp) /
//! [`Node::release_qp`](crate::Node::release_qp)): the free list is a
//! `Vec` preallocated to `capacity` and never grown past it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::qp::Qp;

/// Configuration for a node's QP pool.
#[derive(Debug, Clone)]
pub struct QpPoolConfig {
    /// Master switch. Disabled (the default), every lease cold-creates
    /// and every release destroys — the un-elastic baseline.
    pub enabled: bool,
    /// Maximum recycled QPs retained; releases beyond this destroy.
    pub capacity: usize,
    /// Background refill threshold: when the free list drops below this,
    /// the node's refill task cold-creates QPs into the pool (off the
    /// connect path). `0` disables the refill task.
    pub low_watermark: usize,
    /// QPs created per refill round.
    pub refill_batch: usize,
    /// Interval between refill checks (virtual or wall nanoseconds).
    pub refill_interval_ns: u64,
}

impl Default for QpPoolConfig {
    fn default() -> Self {
        QpPoolConfig {
            enabled: false,
            capacity: 1024,
            low_watermark: 0,
            refill_batch: 8,
            refill_interval_ns: 50_000,
        }
    }
}

/// Pool counters (atomically updated; `Relaxed` — statistics only).
#[derive(Debug, Default)]
pub struct QpPoolStats {
    /// Total leases served.
    pub leases: AtomicU64,
    /// Leases served from the free list (reset + rebind, no creation).
    pub warm: AtomicU64,
    /// Leases that fell through to a cold `create_qp`.
    pub cold: AtomicU64,
    /// QPs released back into the pool.
    pub recycled: AtomicU64,
    /// Releases that found the pool full (QP destroyed instead).
    pub discarded: AtomicU64,
    /// QPs created by the background refill task.
    pub refilled: AtomicU64,
}

impl QpPoolStats {
    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A LIFO free list of reset queue pairs.
///
/// LIFO keeps the most recently used QP's NIC-cache state warmest, and
/// makes lease order deterministic under the virtual lab.
#[derive(Debug)]
pub struct QpPool {
    cfg: QpPoolConfig,
    free: Mutex<Vec<Arc<Qp>>>,
    stats: QpPoolStats,
}

impl QpPool {
    /// Build a pool from its configuration.
    pub fn new(cfg: QpPoolConfig) -> QpPool {
        let cap = if cfg.enabled { cfg.capacity.max(1) } else { 0 };
        QpPool {
            cfg,
            free: Mutex::new(Vec::with_capacity(cap)),
            stats: QpPoolStats::default(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &QpPoolConfig {
        &self.cfg
    }

    /// Pool counters.
    pub fn stats(&self) -> &QpPoolStats {
        &self.stats
    }

    /// Number of QPs currently pooled.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// Whether the free list is empty.
    pub fn is_empty(&self) -> bool {
        self.free.lock().is_empty()
    }

    /// Pop the most recently released QP, if any. Allocation-free.
    pub(crate) fn take(&self) -> Option<Arc<Qp>> {
        if !self.cfg.enabled {
            return None;
        }
        self.free.lock().pop()
    }

    /// Offer a reset QP back to the pool. Returns `false` (caller must
    /// destroy) when the pool is disabled or full. Allocation-free: the
    /// free list never grows past its preallocated capacity.
    pub(crate) fn put(&self, qp: Arc<Qp>) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let mut free = self.free.lock();
        if free.len() >= self.cfg.capacity {
            return false;
        }
        free.push(qp);
        true
    }

    /// Whether the refill task should create more QPs right now.
    pub(crate) fn below_watermark(&self) -> bool {
        self.cfg.enabled
            && self.cfg.low_watermark > 0
            && self.free.lock().len() < self.cfg.low_watermark
    }
}
