//! Memory regions, the memory translation table (MTT) and the memory
//! protection table (MPT).
//!
//! A registered [`MemoryRegion`] owns a real heap buffer. Remote operations
//! name it by `(rkey, virtual address)`; the node's [`MrTable`] validates
//! the rkey against the MPT (access rights) and translates the address via
//! the MTT (bounds). Local operations use the `lkey`.
//!
//! Buffers are guarded by a `parking_lot::RwLock`, serializing concurrent
//! DMA against host access. Real RDMA permits torn concurrent access; the
//! lock is a strictly stronger (safe) model, and the canary protocol built
//! on top of it is still exercised logically by the Flock layer.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::types::{FabricError, Lkey, Result, Rkey};

/// Access rights for a memory region (the MPT entry contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access(u8);

impl Access {
    /// Local read/write only (the implicit minimum).
    pub const LOCAL: Access = Access(0);
    /// Remote hosts may issue RDMA reads.
    pub const REMOTE_READ: Access = Access(1);
    /// Remote hosts may issue RDMA writes.
    pub const REMOTE_WRITE: Access = Access(2);
    /// Remote hosts may issue RDMA atomics.
    pub const REMOTE_ATOMIC: Access = Access(4);
    /// All remote rights.
    pub const REMOTE_ALL: Access = Access(7);

    /// Union of two access sets.
    pub const fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// Whether all rights in `needed` are present.
    pub const fn allows(self, needed: Access) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// The raw rights bitmap — a stable discriminant for keying caches
    /// by region layout (the MR cache keys on `(len, access bits)`).
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        self.union(rhs)
    }
}

/// A registered memory region backed by a real buffer.
#[derive(Debug)]
pub struct MemoryRegion {
    base: u64,
    len: usize,
    lkey: Lkey,
    rkey: Rkey,
    access: Access,
    buf: RwLock<Box<[u8]>>,
}

impl MemoryRegion {
    /// Synthetic virtual base address of the region.
    pub fn addr(&self) -> u64 {
        self.base
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Local key.
    pub fn lkey(&self) -> Lkey {
        self.lkey
    }

    /// Remote key.
    pub fn rkey(&self) -> Rkey {
        self.rkey
    }

    /// Granted access rights.
    pub fn access(&self) -> Access {
        self.access
    }

    /// Translate a `(virtual address, length)` pair into a buffer offset,
    /// validating bounds (the MTT lookup).
    pub fn translate(&self, addr: u64, len: usize) -> Result<usize> {
        let end = addr.checked_add(len as u64);
        if addr < self.base || end.is_none() || end.unwrap() > self.base + self.len as u64 {
            return Err(FabricError::AccessViolation { addr, len });
        }
        Ok((addr - self.base) as usize)
    }

    /// Copy `data` into the region at byte `offset`.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<()> {
        if offset + data.len() > self.len {
            return Err(FabricError::AccessViolation {
                addr: self.base + offset as u64,
                len: data.len(),
            });
        }
        self.buf.write()[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copy from the region at byte `offset` into `out`.
    pub fn read(&self, offset: usize, out: &mut [u8]) -> Result<()> {
        if offset + out.len() > self.len {
            return Err(FabricError::AccessViolation {
                addr: self.base + offset as u64,
                len: out.len(),
            });
        }
        out.copy_from_slice(&self.buf.read()[offset..offset + out.len()]);
        Ok(())
    }

    /// Copy `len` bytes out of the region as a fresh vector.
    pub fn read_vec(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(offset, &mut v)?;
        Ok(v)
    }

    /// Read a little-endian `u64` at byte `offset` (used by pollers).
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian `u64` at byte `offset`.
    pub fn write_u64(&self, offset: usize, value: u64) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Run `f` over an immutable view of the whole buffer.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.buf.read())
    }

    /// Run `f` over a mutable view of the whole buffer.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.buf.write())
    }

    /// DMA `len` bytes from this region at `src_off` into `dst` at
    /// `dst_off` — the engine's zero-copy data path: one guarded
    /// `memcpy` between the two buffers, with no intermediate `Vec`
    /// materialized per verb.
    ///
    /// When the regions are distinct, the two buffer guards are taken in
    /// a consistent global order keyed by object identity (pointer
    /// address), *not* by the synthetic virtual base: bases collide
    /// across nodes because every `MrTable` hands them out from the same
    /// origin. That ordering makes concurrent opposite-direction copies
    /// (lane A copies X→Y while lane B copies Y→X) deadlock-free.
    /// A same-region copy takes one write guard and uses `copy_within`
    /// (overlap-safe).
    pub fn dma_to(
        &self,
        src_off: usize,
        dst: &MemoryRegion,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        if src_off + len > self.len {
            return Err(FabricError::AccessViolation {
                addr: self.base + src_off as u64,
                len,
            });
        }
        if dst_off + len > dst.len {
            return Err(FabricError::AccessViolation {
                addr: dst.base + dst_off as u64,
                len,
            });
        }
        if std::ptr::eq(self, dst) {
            self.buf
                .write()
                .copy_within(src_off..src_off + len, dst_off);
            return Ok(());
        }
        let src_first =
            (self as *const MemoryRegion as usize) < (dst as *const MemoryRegion as usize);
        if src_first {
            let src = self.buf.read();
            let mut d = dst.buf.write();
            d[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]);
        } else {
            let mut d = dst.buf.write();
            let src = self.buf.read();
            d[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]);
        }
        Ok(())
    }

    /// Atomically fetch the 8-byte value at `offset` and add `delta`.
    /// Returns the prior value. `offset` must be 8-byte aligned.
    pub fn fetch_add_u64(&self, offset: usize, delta: u64) -> Result<u64> {
        self.atomic_rmw(offset, |old| old.wrapping_add(delta))
    }

    /// Atomically compare-and-swap the 8-byte value at `offset`.
    /// Returns the prior value (swap succeeded iff it equals `expect`).
    pub fn cmp_swap_u64(&self, offset: usize, expect: u64, swap: u64) -> Result<u64> {
        self.atomic_rmw(offset, |old| if old == expect { swap } else { old })
    }

    fn atomic_rmw(&self, offset: usize, f: impl FnOnce(u64) -> u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(FabricError::Misaligned(self.base + offset as u64));
        }
        if offset + 8 > self.len {
            return Err(FabricError::AccessViolation {
                addr: self.base + offset as u64,
                len: 8,
            });
        }
        let mut guard = self.buf.write();
        let bytes: &mut [u8] = &mut guard[offset..offset + 8];
        let old = u64::from_le_bytes(bytes.try_into().expect("8-byte slice"));
        let new = f(old);
        bytes.copy_from_slice(&new.to_le_bytes());
        Ok(old)
    }
}

/// Per-node registry of memory regions: MTT + MPT.
#[derive(Debug, Default)]
pub struct MrTable {
    regions: RwLock<Vec<Arc<MemoryRegion>>>,
    next_key: AtomicU32,
    next_base: AtomicU64,
}

impl MrTable {
    /// Create an empty table. Synthetic virtual addresses start at a
    /// non-zero base so that address 0 is never valid.
    pub fn new() -> Self {
        MrTable {
            regions: RwLock::new(Vec::new()),
            next_key: AtomicU32::new(1),
            next_base: AtomicU64::new(0x1000_0000),
        }
    }

    /// Register a zeroed region of `len` bytes with the given remote rights.
    pub fn register(&self, len: usize, access: Access) -> Arc<MemoryRegion> {
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        // Pad region spacing so adjacent regions never abut (catches
        // off-by-one overruns as violations rather than silent bleed).
        let base = self.next_base.fetch_add(
            (len as u64 + 4096).next_multiple_of(4096),
            Ordering::Relaxed,
        );
        let mr = Arc::new(MemoryRegion {
            base,
            len,
            lkey: Lkey(key),
            rkey: Rkey(key),
            access,
            buf: RwLock::new(vec![0u8; len].into_boxed_slice()),
        });
        self.regions.write().push(Arc::clone(&mr));
        mr
    }

    /// MPT lookup by remote key, checking `needed` rights.
    pub fn lookup_rkey(&self, rkey: Rkey, needed: Access) -> Result<Arc<MemoryRegion>> {
        let regions = self.regions.read();
        let mr = regions
            .iter()
            .find(|m| m.rkey == rkey)
            .cloned()
            .ok_or(FabricError::BadRkey(rkey))?;
        if !mr.access.allows(needed) {
            return Err(FabricError::AccessViolation {
                addr: mr.base,
                len: 0,
            });
        }
        Ok(mr)
    }

    /// Lookup by local key.
    pub fn lookup_lkey(&self, lkey: Lkey) -> Result<Arc<MemoryRegion>> {
        self.regions
            .read()
            .iter()
            .find(|m| m.lkey == lkey)
            .cloned()
            .ok_or(FabricError::BadLkey(lkey))
    }

    /// Deregister the region with local key `lkey` (verbs
    /// `ibv_dereg_mr`). Future lookups by either key fail; existing `Arc`
    /// handles keep their buffer alive but the NIC will no longer resolve
    /// the keys.
    pub fn deregister(&self, lkey: Lkey) -> bool {
        let mut regions = self.regions.write();
        let before = regions.len();
        regions.retain(|m| m.lkey != lkey);
        regions.len() != before
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flag_algebra() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.allows(Access::REMOTE_READ));
        assert!(rw.allows(Access::REMOTE_WRITE));
        assert!(!rw.allows(Access::REMOTE_ATOMIC));
        assert!(Access::REMOTE_ALL.allows(rw));
        assert!(rw.allows(Access::LOCAL));
    }

    #[test]
    fn register_and_rw_roundtrip() {
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        mr.write(10, b"hello").unwrap();
        let mut out = [0u8; 5];
        mr.read(10, &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn bounds_are_enforced() {
        let t = MrTable::new();
        let mr = t.register(16, Access::REMOTE_ALL);
        assert!(mr.write(12, b"abcde").is_err());
        let mut out = [0u8; 8];
        assert!(mr.read(9, &mut out).is_err());
        assert!(mr.read(8, &mut out).is_ok());
    }

    #[test]
    fn translate_validates_address_range() {
        let t = MrTable::new();
        let mr = t.register(256, Access::REMOTE_ALL);
        let base = mr.addr();
        assert_eq!(mr.translate(base, 256).unwrap(), 0);
        assert_eq!(mr.translate(base + 10, 1).unwrap(), 10);
        assert!(mr.translate(base - 1, 1).is_err());
        assert!(mr.translate(base + 1, 256).is_err());
        assert!(mr.translate(u64::MAX, 2).is_err());
    }

    #[test]
    fn rkey_lookup_checks_rights() {
        let t = MrTable::new();
        let ro = t.register(64, Access::REMOTE_READ);
        assert!(t.lookup_rkey(ro.rkey(), Access::REMOTE_READ).is_ok());
        assert!(matches!(
            t.lookup_rkey(ro.rkey(), Access::REMOTE_WRITE),
            Err(FabricError::AccessViolation { .. })
        ));
        assert!(matches!(
            t.lookup_rkey(Rkey(999), Access::LOCAL),
            Err(FabricError::BadRkey(_))
        ));
    }

    #[test]
    fn lkey_lookup() {
        let t = MrTable::new();
        let mr = t.register(64, Access::LOCAL);
        assert!(t.lookup_lkey(mr.lkey()).is_ok());
        assert!(matches!(
            t.lookup_lkey(Lkey(12345)),
            Err(FabricError::BadLkey(_))
        ));
    }

    #[test]
    fn regions_do_not_overlap() {
        let t = MrTable::new();
        let a = t.register(100, Access::LOCAL);
        let b = t.register(100, Access::LOCAL);
        let a_end = a.addr() + a.len() as u64;
        assert!(b.addr() >= a_end, "regions overlap");
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let t = MrTable::new();
        let mr = t.register(64, Access::REMOTE_ALL);
        mr.write_u64(8, 41).unwrap();
        assert_eq!(mr.fetch_add_u64(8, 1).unwrap(), 41);
        assert_eq!(mr.read_u64(8).unwrap(), 42);
    }

    #[test]
    fn cmp_swap_semantics() {
        let t = MrTable::new();
        let mr = t.register(64, Access::REMOTE_ALL);
        mr.write_u64(0, 7).unwrap();
        // Successful swap.
        assert_eq!(mr.cmp_swap_u64(0, 7, 9).unwrap(), 7);
        assert_eq!(mr.read_u64(0).unwrap(), 9);
        // Failed swap leaves value intact, returns current.
        assert_eq!(mr.cmp_swap_u64(0, 7, 11).unwrap(), 9);
        assert_eq!(mr.read_u64(0).unwrap(), 9);
    }

    #[test]
    fn atomics_require_alignment() {
        let t = MrTable::new();
        let mr = t.register(64, Access::REMOTE_ALL);
        assert!(matches!(
            mr.fetch_add_u64(4, 1),
            Err(FabricError::Misaligned(_))
        ));
        assert!(mr.fetch_add_u64(60, 1).is_err()); // out of bounds
    }

    #[test]
    fn dma_to_copies_between_regions() {
        let t = MrTable::new();
        let a = t.register(64, Access::REMOTE_ALL);
        let b = t.register(64, Access::REMOTE_ALL);
        a.write(3, b"payload").unwrap();
        a.dma_to(3, &b, 40, 7).unwrap();
        assert_eq!(b.read_vec(40, 7).unwrap(), b"payload");
        // Bounds violations on either side fail cleanly.
        assert!(a.dma_to(60, &b, 0, 8).is_err());
        assert!(a.dma_to(0, &b, 60, 8).is_err());
    }

    #[test]
    fn dma_to_same_region_handles_overlap() {
        let t = MrTable::new();
        let a = t.register(32, Access::LOCAL);
        a.write(0, b"abcdefgh").unwrap();
        a.dma_to(0, &a, 4, 8).unwrap();
        assert_eq!(a.read_vec(4, 8).unwrap(), b"abcdefgh");
    }

    #[test]
    fn dma_to_opposite_directions_do_not_deadlock() {
        let t = MrTable::new();
        let a = t.register(1 << 12, Access::REMOTE_ALL);
        let b = t.register(1 << 12, Access::REMOTE_ALL);
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let fwd = std::thread::spawn(move || {
            for _ in 0..2000 {
                a2.dma_to(0, &b2, 0, 1 << 12).unwrap();
            }
        });
        for _ in 0..2000 {
            b.dma_to(0, &a, 0, 1 << 12).unwrap();
        }
        fwd.join().unwrap();
    }

    #[test]
    fn u64_helpers_roundtrip() {
        let t = MrTable::new();
        let mr = t.register(64, Access::LOCAL);
        mr.write_u64(16, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(mr.read_u64(16).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }
}
