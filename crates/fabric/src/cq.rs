//! Completion queues.
//!
//! A [`CompletionQueue`] buffers [`Completion`] entries DMA-ed by the NIC
//! engine; applications poll it (`ibv_poll_cq` style).
//!
//! # Design: a lock-free bounded ring with a spill lane
//!
//! The seed implementation was a `Mutex<VecDeque>` plus a condition
//! variable, which charged every completion one lock round-trip and a
//! `notify_all` — the dominant per-completion cost once the NIC engine
//! went multi-lane. The queue is now a bounded MPMC ring in the style of
//! Vyukov's array queue: each cell carries a sequence number, producers
//! claim a slot with one CAS on the enqueue cursor, and the consumer's
//! batched [`CompletionQueue::poll`] claims a whole *run* of ready cells
//! with a single CAS on the dequeue cursor — one synchronization edge
//! per sweep instead of one lock per entry.
//!
//! The common topology is SPSC (one NIC lane completing into a CQ owned
//! by one dispatcher), but nothing enforces it: several lanes may share
//! a CQ (e.g. the server's immediate CQ, or one connection's send CQ
//! covering QPs spread across lanes), so the protocol is MPMC-safe and
//! merely *fast* in the SPSC case.
//!
//! Real CQ overflow is fatal; the seed modeled that by growing without
//! bound and tracking a high-water mark. To preserve those semantics
//! without letting a full ring wedge a NIC lane (completions are pushed
//! from the lane thread; blocking it would deadlock the whole node), a
//! producer that finds the ring full spills into a mutex-protected side
//! deque. The spill is drained — FIFO after everything already in the
//! ring — once the consumer empties the ring, and `high_water` exposes
//! ring + spill depth so tests can still assert on sizing. Entries are
//! never dropped. Once a spill begins, producers keep spilling until the
//! consumer has drained it, so entries pushed by one thread stay ordered
//! in steady state; across producers the queue (like hardware) promises
//! delivery, not a global order, and consumers route by `wr_id`.
//!
//! # Memory-ordering contract
//!
//! * Producer: `Acquire` on the cell sequence (observes the consumer's
//!   recycle of the slot, so writing the payload cannot race the
//!   consumer's read of the previous lap), `Relaxed` CAS on the enqueue
//!   cursor (the cursor only arbitrates *which* producer gets the slot;
//!   the payload handoff rides the cell sequence), `Release` on the
//!   final sequence store (publishes the payload write).
//! * Consumer: `Acquire` per cell sequence while scanning the ready run
//!   (pairs with the producer's `Release`; after it, reading the payload
//!   is ordered), `Relaxed` CAS on the dequeue cursor (monotonic, so no
//!   ABA; claiming is again pure arbitration), `Release` on the recycle
//!   store (publishes the payload *read* — a producer that acquires the
//!   recycled sequence cannot overwrite the slot early).
//!
//! The whole protocol is built on `flock_sync` atomics, so `cargo loom`
//! model-checks it exhaustively (`crates/fabric/tests/loom_cq.rs`).

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::time::Duration;

use flock_sync::atomic::{AtomicU64, Ordering};
use flock_sync::{backoff, Arc, CachePadded, UnsafeCell};
use parking_lot::Mutex;

use crate::verbs::Completion;

/// One ring slot: a sequence number driving the Vyukov protocol and the
/// payload it publishes.
struct Cell {
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<Completion>>,
}

/// A completion queue shared between the NIC engine (producer) and
/// application threads (consumers). See the module docs for the
/// lock-free design and its memory-ordering contract.
pub struct CompletionQueue {
    /// Ring cells; length is a power of two.
    cells: Box<[Cell]>,
    /// Index mask (`cells.len() - 1`).
    mask: u64,
    /// Next slot producers will claim.
    enqueue_pos: CachePadded<AtomicU64>,
    /// Next slot the consumer will claim.
    dequeue_pos: CachePadded<AtomicU64>,
    /// Total completions ever pushed.
    pushed: AtomicU64,
    /// Maximum queue depth observed (ring + spill).
    high_water: AtomicU64,
    /// Overflow spill: only touched when the ring is full (slow path).
    spill: Mutex<VecDeque<Completion>>,
    /// Cheap "the spill is non-empty" hint so the fast paths skip the
    /// spill mutex entirely. Set under the spill lock by producers,
    /// cleared under it by the consumer when the spill drains dry.
    spill_active: AtomicU64,
}

// SAFETY: the Vyukov cell protocol guarantees exclusive access to
// `val` between the claim and the sequence publication on both the
// produce and consume side (see the module docs); `Completion` itself
// is `Copy + Send`. The spill deque is mutex-protected.
unsafe impl Send for CompletionQueue {}
// SAFETY: as above — all shared mutation goes through the cell
// sequence protocol or the spill mutex.
unsafe impl Sync for CompletionQueue {}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("capacity", &self.cells.len())
            .field("len", &self.len())
            .field("pushed", &self.pushed.load(Ordering::Relaxed))
            .finish()
    }
}

impl CompletionQueue {
    /// Create an empty CQ. `capacity` is rounded up to a power of two
    /// (minimum 2) and sizes the lock-free ring; if a burst ever exceeds
    /// it, entries spill to a mutexed side queue rather than being
    /// dropped, and the high-water mark records the excursion.
    pub fn new(capacity: usize) -> Arc<CompletionQueue> {
        let cap = capacity.next_power_of_two().max(2);
        let cells: Box<[Cell]> = (0..cap)
            .map(|i| Cell {
                seq: AtomicU64::new(i as u64),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Arc::new(CompletionQueue {
            cells,
            mask: (cap - 1) as u64,
            enqueue_pos: CachePadded::new(AtomicU64::new(0)),
            dequeue_pos: CachePadded::new(AtomicU64::new(0)),
            pushed: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            spill: Mutex::new(VecDeque::new()),
            spill_active: AtomicU64::new(0),
        })
    }

    /// NIC-side: enqueue a completion. Never blocks and never drops; a
    /// full ring spills to the side queue (see module docs).
    pub fn push(&self, c: Completion) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        // Once a spill has started, later pushes must join it so the
        // consumer can drain in order; the ring is only rejoined after
        // the consumer empties the spill.
        if self.spill_active.load(Ordering::Acquire) != 0 || !self.try_push_ring(c) {
            let mut spill = self.spill.lock();
            self.spill_active.store(1, Ordering::Release);
            spill.push_back(c);
        }
        let depth = self.len() as u64;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Vyukov enqueue: claim a slot with one CAS, publish with one
    /// `Release` store. Returns `false` if the ring is full.
    fn try_push_ring(&self, c: Completion) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            let diff = seq as i64 - pos as i64;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        cell.val.with_mut(|p| {
                            // SAFETY: the successful CAS above grants this
                            // producer exclusive ownership of the cell until
                            // the `Release` store below publishes it.
                            unsafe { (*p).write(c) };
                        });
                        cell.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                // The slot is still occupied from one lap ago: full.
                return false;
            } else {
                // Another producer advanced past us; re-read the cursor.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Consumer side: claim the contiguous run of ready cells with one
    /// CAS; returns how many entries were appended to `out`.
    fn poll_ring(&self, out: &mut Vec<Completion>, max: usize) -> usize {
        loop {
            let pos = self.dequeue_pos.load(Ordering::Relaxed);
            // Scan the ready prefix: one Acquire edge per cell, no
            // stores, so an empty poll is a read-only sweep.
            let mut n = 0u64;
            while (n as usize) < max {
                let cell = &self.cells[((pos + n) & self.mask) as usize];
                if cell.seq.load(Ordering::Acquire) != pos + n + 1 {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                return 0;
            }
            // One CAS claims the whole run. Monotonic cursor => no ABA:
            // if it still equals `pos`, none of the scanned cells can
            // have been consumed or recycled since the scan.
            match self.dequeue_pos.compare_exchange(
                pos,
                pos + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    for k in 0..n {
                        let cell = &self.cells[((pos + k) & self.mask) as usize];
                        let c = cell.val.with(|p| {
                            // SAFETY: the CAS gave this consumer exclusive
                            // ownership of the claimed run; the Acquire scan
                            // ordered the producer's payload write before
                            // this read. `Completion` is `Copy`.
                            unsafe { (*p).assume_init() }
                        });
                        out.push(c);
                        // Recycle the slot for the producer one lap ahead.
                        cell.seq
                            .store(pos + k + self.cells.len() as u64, Ordering::Release);
                    }
                    return n as usize;
                }
                Err(_) => continue, // another consumer claimed first; rescan
            }
        }
    }

    /// Poll up to `max` completions into `out`; returns how many were
    /// moved. Never blocks (the spill mutex is only taken when a spill
    /// is actually active, i.e. after a ring-overflow excursion).
    pub fn poll(&self, out: &mut Vec<Completion>, max: usize) -> usize {
        let mut n = self.poll_ring(out, max);
        if n < max && self.spill_active.load(Ordering::Acquire) != 0 {
            let mut spill = self.spill.lock();
            while n < max {
                match spill.pop_front() {
                    Some(c) => {
                        out.push(c);
                        n += 1;
                    }
                    None => break,
                }
            }
            if spill.is_empty() {
                self.spill_active.store(0, Ordering::Release);
            }
        }
        n
    }

    /// Poll a single completion without blocking. Allocation-free: the
    /// single-entry case claims one cell directly instead of routing
    /// through the `Vec`-based batch path (`wait_one` calls this in its
    /// inner loop, so a per-call `Vec` would allocate on every empty
    /// poll).
    pub fn poll_one(&self) -> Option<Completion> {
        loop {
            let pos = self.dequeue_pos.load(Ordering::Relaxed);
            let cell = &self.cells[(pos & self.mask) as usize];
            if cell.seq.load(Ordering::Acquire) != pos + 1 {
                break; // ring empty (or the head cell not yet published)
            }
            match self.dequeue_pos.compare_exchange(
                pos,
                pos + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let c = cell.val.with(|p| {
                        // SAFETY: the CAS gave this consumer exclusive
                        // ownership of the claimed cell; the Acquire load
                        // of `seq` ordered the producer's payload write
                        // before this read. `Completion` is `Copy`.
                        unsafe { (*p).assume_init() }
                    });
                    // Recycle the slot for the producer one lap ahead.
                    cell.seq
                        .store(pos + self.cells.len() as u64, Ordering::Release);
                    return Some(c);
                }
                Err(_) => continue, // another consumer claimed first; rescan
            }
        }
        if self.spill_active.load(Ordering::Acquire) != 0 {
            let mut spill = self.spill.lock();
            let c = spill.pop_front();
            if spill.is_empty() {
                self.spill_active.store(0, Ordering::Release);
            }
            if c.is_some() {
                return c;
            }
        }
        None
    }

    /// Block until a completion is available or `timeout` elapses.
    ///
    /// The seed used a condition variable; completions now arrive
    /// lock-free, so this spins with the shared [`backoff`] ladder
    /// (spin-hint with periodic OS yields) until the deadline. Under a
    /// virtual-time executor the deadline is virtual and each empty
    /// round is a short virtual sleep instead of a spin.
    pub fn wait_one(&self, timeout: Duration) -> Option<Completion> {
        let deadline = flock_sync::clock::deadline(timeout);
        let virtual_time = flock_sync::clock::is_virtual();
        let mut spins = 0u32;
        loop {
            if let Some(c) = self.poll_one() {
                return Some(c);
            }
            if flock_sync::clock::expired(deadline) {
                return self.poll_one();
            }
            if virtual_time {
                flock_sync::clock::sleep_ns(500);
                continue;
            }
            backoff(spins);
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(4096) {
                // Long waits (tests use tens of ms) should not burn a
                // core: after ~4k spin/yield rounds, sleep in short
                // slices toward the deadline.
                flock_sync::clock::sleep(Duration::from_micros(100));
            }
        }
    }

    /// Number of queued completions (ring + spill; approximate under
    /// concurrent pushes, exact when quiescent).
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        let ring = enq.saturating_sub(deq) as usize;
        let spill = if self.spill_active.load(Ordering::Acquire) != 0 {
            self.spill.lock().len()
        } else {
            0
        };
        ring + spill
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum queue depth observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed) as usize
    }

    /// Total completions ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::types::{QpNum, WrId};
    use crate::verbs::{CqOpcode, CqStatus};

    fn comp(id: u64) -> Completion {
        Completion {
            wr_id: WrId(id),
            status: CqStatus::Success,
            opcode: CqOpcode::Send,
            byte_len: 0,
            imm: None,
            src: None,
            qpn: QpNum(0),
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            cq.push(comp(i));
        }
        let mut out = Vec::new();
        assert_eq!(cq.poll(&mut out, 3), 3);
        assert_eq!(out.iter().map(|c| c.wr_id.0).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.poll(&mut out, 10), 2);
        assert!(cq.is_empty());
    }

    #[test]
    fn poll_one_and_counters() {
        let cq = CompletionQueue::new(2);
        assert!(cq.poll_one().is_none());
        cq.push(comp(9));
        cq.push(comp(10));
        assert_eq!(cq.poll_one().unwrap().wr_id, WrId(9));
        assert_eq!(cq.total_pushed(), 2);
        assert_eq!(cq.high_water(), 2);
    }

    #[test]
    fn wait_one_times_out_when_empty() {
        let cq = CompletionQueue::new(1);
        assert!(cq.wait_one(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn wait_one_wakes_on_push() {
        let cq = CompletionQueue::new(1);
        let cq2 = Arc::clone(&cq);
        let t = std::thread::spawn(move || cq2.wait_one(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        cq.push(comp(77));
        let got = t.join().unwrap();
        assert_eq!(got.unwrap().wr_id, WrId(77));
    }

    #[test]
    fn ring_wraps_many_laps() {
        let cq = CompletionQueue::new(4);
        let mut out = Vec::new();
        for lap in 0..100u64 {
            for i in 0..4 {
                cq.push(comp(lap * 4 + i));
            }
            out.clear();
            assert_eq!(cq.poll(&mut out, 8), 4);
            assert_eq!(out[0].wr_id.0, lap * 4);
            assert_eq!(out[3].wr_id.0, lap * 4 + 3);
        }
        assert!(cq.is_empty());
        assert_eq!(cq.total_pushed(), 400);
    }

    #[test]
    fn overflow_spills_without_loss() {
        // Capacity 4, push 100 without polling: the seed grew a
        // VecDeque; the ring must spill and deliver everything, FIFO.
        let cq = CompletionQueue::new(4);
        for i in 0..100 {
            cq.push(comp(i));
        }
        assert_eq!(cq.len(), 100);
        assert!(cq.high_water() >= 100);
        let mut out = Vec::new();
        let mut got = 0;
        while got < 100 {
            let n = cq.poll(&mut out, 7);
            assert!(n > 0, "lost completions after {got}");
            got += n;
        }
        let ids: Vec<u64> = out.iter().map(|c| c.wr_id.0).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
        assert!(cq.is_empty());
        // After the spill drains, traffic returns to the ring fast path.
        cq.push(comp(500));
        assert_eq!(cq.poll_one().unwrap().wr_id, WrId(500));
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let cq = CompletionQueue::new(64);
        let producers = 4;
        let per = 5000u64;
        let mut joins = Vec::new();
        for p in 0..producers {
            let cq = Arc::clone(&cq);
            joins.push(std::thread::spawn(move || {
                for i in 0..per {
                    cq.push(comp(p * per + i));
                }
            }));
        }
        let mut seen = vec![false; (producers * per) as usize];
        let mut out = Vec::new();
        let mut got = 0u64;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while got < producers * per {
            out.clear();
            let n = cq.poll(&mut out, 256);
            for c in &out {
                assert!(!seen[c.wr_id.0 as usize], "duplicate {}", c.wr_id.0);
                seen[c.wr_id.0 as usize] = true;
            }
            got += n as u64;
            assert!(std::time::Instant::now() < deadline, "stalled at {got}");
            if n == 0 {
                std::thread::yield_now();
            }
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(cq.total_pushed(), producers * per);
    }

    #[test]
    fn per_producer_order_is_fifo_on_the_fast_path() {
        // One producer, one consumer, ring never full: strict FIFO.
        let cq = CompletionQueue::new(256);
        let cq2 = Arc::clone(&cq);
        let t = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                cq2.push(comp(i));
            }
        });
        let mut next = 0u64;
        let mut out = Vec::new();
        while next < 10_000 {
            out.clear();
            let n = cq.poll(&mut out, 64);
            for c in &out {
                assert_eq!(c.wr_id.0, next);
                next += 1;
            }
            if n == 0 {
                std::hint::spin_loop();
            }
        }
        t.join().unwrap();
    }
}
