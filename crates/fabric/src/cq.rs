//! Completion queues.
//!
//! A [`CompletionQueue`] buffers [`Completion`] entries DMA-ed by the NIC
//! engine; applications poll it (`ibv_poll_cq` style). A condition variable
//! is provided for tests and examples that prefer blocking waits over
//! spin-polling.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::verbs::Completion;

/// A completion queue shared between the NIC engine (producer) and
/// application threads (consumers).
#[derive(Debug)]
pub struct CompletionQueue {
    inner: Mutex<Inner>,
    cond: Condvar,
}

#[derive(Debug)]
struct Inner {
    entries: VecDeque<Completion>,
    high_water: usize,
    pushed: u64,
}

impl CompletionQueue {
    /// Create an empty CQ. `capacity` is a sizing hint; the queue grows as
    /// needed (real CQ overflow is fatal; we track the high-water mark
    /// instead so tests can assert on sizing).
    pub fn new(capacity: usize) -> Arc<CompletionQueue> {
        Arc::new(CompletionQueue {
            inner: Mutex::new(Inner {
                entries: VecDeque::with_capacity(capacity),
                high_water: 0,
                pushed: 0,
            }),
            cond: Condvar::new(),
        })
    }

    /// NIC-side: enqueue a completion.
    pub fn push(&self, c: Completion) {
        let mut inner = self.inner.lock();
        inner.entries.push_back(c);
        let len = inner.entries.len();
        if len > inner.high_water {
            inner.high_water = len;
        }
        inner.pushed += 1;
        drop(inner);
        self.cond.notify_all();
    }

    /// Poll up to `max` completions into `out`; returns how many were moved.
    /// Never blocks.
    pub fn poll(&self, out: &mut Vec<Completion>, max: usize) -> usize {
        let mut inner = self.inner.lock();
        let n = max.min(inner.entries.len());
        out.extend(inner.entries.drain(..n));
        n
    }

    /// Poll a single completion without blocking.
    pub fn poll_one(&self) -> Option<Completion> {
        self.inner.lock().entries.pop_front()
    }

    /// Block until a completion is available or `timeout` elapses.
    pub fn wait_one(&self, timeout: Duration) -> Option<Completion> {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.entries.pop_front() {
            return Some(c);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return inner.entries.pop_front();
            }
            if let Some(c) = inner.entries.pop_front() {
                return Some(c);
            }
        }
    }

    /// Number of queued completions.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Maximum queue depth observed.
    pub fn high_water(&self) -> usize {
        self.inner.lock().high_water
    }

    /// Total completions ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QpNum, WrId};
    use crate::verbs::{CqOpcode, CqStatus};

    fn comp(id: u64) -> Completion {
        Completion {
            wr_id: WrId(id),
            status: CqStatus::Success,
            opcode: CqOpcode::Send,
            byte_len: 0,
            imm: None,
            src: None,
            qpn: QpNum(0),
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            cq.push(comp(i));
        }
        let mut out = Vec::new();
        assert_eq!(cq.poll(&mut out, 3), 3);
        assert_eq!(out.iter().map(|c| c.wr_id.0).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.poll(&mut out, 10), 2);
        assert!(cq.is_empty());
    }

    #[test]
    fn poll_one_and_counters() {
        let cq = CompletionQueue::new(2);
        assert!(cq.poll_one().is_none());
        cq.push(comp(9));
        cq.push(comp(10));
        assert_eq!(cq.poll_one().unwrap().wr_id, WrId(9));
        assert_eq!(cq.total_pushed(), 2);
        assert_eq!(cq.high_water(), 2);
    }

    #[test]
    fn wait_one_times_out_when_empty() {
        let cq = CompletionQueue::new(1);
        assert!(cq.wait_one(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn wait_one_wakes_on_push() {
        let cq = CompletionQueue::new(1);
        let cq2 = Arc::clone(&cq);
        let t = std::thread::spawn(move || cq2.wait_one(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        cq.push(comp(77));
        let got = t.join().unwrap();
        assert_eq!(got.unwrap().wr_id, WrId(77));
    }
}
