#![warn(missing_docs)]

//! # flock-fabric
//!
//! A software RDMA fabric substituting for the ConnectX-5 hardware used in
//! the Flock paper (SOSP 2021). See DESIGN.md §2 for the substitution
//! rationale.
//!
//! The fabric provides verbs-level semantics in process:
//!
//! * **Transports** — RC, UC, and UD queue pairs with the capability matrix
//!   of the paper's Table 1 (verbs supported, MTU limits, reliability).
//! * **Memory regions** — registered buffers with lkey/rkey protection,
//!   address translation (MTT) and access checks (MPT).
//! * **One-sided verbs** — read, write, write-with-immediate, fetch-and-add
//!   and compare-and-swap executed by a per-node NIC engine thread with no
//!   involvement of the target's CPU.
//! * **Two-sided verbs** — send/recv with posted receive buffers, RNR
//!   failures on RC, silent drops and a synthetic 40-byte GRH on UD, plus
//!   optional UD loss injection.
//! * **The RNIC connection cache** — a per-node LRU over connection state
//!   ([`ConnCache`]) mirroring the paper's Figure 1, and the [`CostModel`]
//!   that prices cache misses (PCIe fetches), wire time, doorbells, and
//!   host polling for the discrete-event experiments.
//!
//! ## Concurrency discipline
//!
//! This crate sits *below* `flock-core` in the dependency graph, so it
//! cannot use the `flock_core::sync` std/loom facade. That is fine: its
//! cross-thread state is locks/condvars plus `Relaxed` stats counters and
//! ID allocators — no lock-free protocols. Every `Ordering::` site is
//! inventoried by `cargo audit-orderings` (see `orderings.allow`); any
//! future lock-free protocol belongs in a crate above `flock-core` where
//! the loom model checker can reach it (DESIGN.md, "Memory ordering and
//! verification").
//!
//! ## Example
//!
//! ```
//! use flock_fabric::{Access, Fabric, RemoteAddr, SendWr, Sge, Transport, WrId};
//! use std::time::Duration;
//!
//! let fabric = Fabric::with_defaults();
//! let client = fabric.add_node("client");
//! let server = fabric.add_node("server");
//!
//! // Server exposes 1 KiB of remotely writable memory.
//! let smr = server.register_mr(1024, Access::REMOTE_ALL);
//! // Client stages its payload in a local region.
//! let cmr = client.register_mr(1024, Access::LOCAL);
//! cmr.write(0, b"hello rdma").unwrap();
//!
//! let cq = client.create_cq(16);
//! let scq = server.create_cq(16);
//! let cqp = client.create_qp(Transport::Rc, &cq, &cq);
//! let sqp = server.create_qp(Transport::Rc, &scq, &scq);
//! fabric.connect(&cqp, &sqp).unwrap();
//!
//! cqp.post_send(SendWr::write(
//!     WrId(1),
//!     Sge { lkey: cmr.lkey(), addr: cmr.addr(), len: 10 },
//!     RemoteAddr { rkey: smr.rkey(), addr: smr.addr() },
//! )).unwrap();
//!
//! let comp = cq.wait_one(Duration::from_secs(1)).unwrap();
//! assert!(comp.is_ok());
//! assert_eq!(smr.read_vec(0, 10).unwrap(), b"hello rdma");
//! ```

pub mod cache;
pub mod cq;
pub mod fabric;
pub mod mr;
pub mod mrcache;
pub mod nic;
pub mod qp;
pub mod qpool;
pub mod timing;
pub mod types;
pub mod verbs;

pub use cache::{qp_state_key, ConnCache, Eviction};
pub use cq::CompletionQueue;
pub use fabric::{auto_nic_lanes, connect_qps, Fabric, FabricConfig, Node};
pub use mr::{Access, MemoryRegion, MrTable};
pub use mrcache::{MrCache, MrCacheConfig};
pub use qpool::{QpPool, QpPoolConfig, QpPoolStats};
pub use nic::{NicStats, GRH_BYTES};
pub use qp::Qp;
pub use timing::CostModel;
pub use types::{FabricError, Lkey, NodeId, QpNum, QpState, Result, Rkey, Transport, WrId};
pub use verbs::{Completion, CqOpcode, CqStatus, RecvWr, RemoteAddr, SendOp, SendWr, Sge};
