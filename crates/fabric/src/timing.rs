//! The timing cost model shared by the threaded fabric (for accounting) and
//! the discrete-event models (for scheduling).
//!
//! All constants are nanoseconds unless noted. Defaults are calibrated
//! against published microbenchmarks of ConnectX-5 class hardware on a
//! 100 Gb/s network and against the *shapes* reported in the Flock paper
//! (see DESIGN.md §5): per-verb NIC processing of tens of ns across a small
//! number of processing units, a connection-state cache whose misses cost a
//! PCIe round trip, per-message MMIO doorbells of a few hundred cycles, and
//! per-packet wire overheads.

use flock_sim::Ns;

/// Timing constants for one experiment. Construct via [`CostModel::default`]
/// and override fields as needed.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- NIC ----
    /// Number of NIC processing units (QPs are hashed across them).
    pub nic_processing_units: usize,
    /// Base NIC processing time per verb (WQE fetch, protocol state update).
    pub nic_verb_ns: u64,
    /// Additional NIC processing per WQE when the connection state hits in
    /// the NIC cache.
    pub nic_cached_state_ns: u64,
    /// Penalty for a NIC connection-cache miss (state fetched over PCIe).
    pub nic_cache_miss_ns: u64,
    /// Extra NIC processing for one-sided read responder/requester work
    /// (RDMA reads are heavier than ring writes per WQE).
    pub nic_read_extra_ns: u64,
    /// Extra NIC processing for remote atomics (FetchAdd/CmpSwap). The
    /// responder NIC serializes atomics through a single locked PCIe
    /// read-modify-write unit, making them the slowest verb per WQE —
    /// the reason ALock keeps contended handoffs local and only touches
    /// the remote word once per cohort burst.
    pub nic_atomic_extra_ns: u64,
    /// Number of connection-state entries the NIC cache holds.
    pub nic_cache_entries: usize,
    /// DMA engine cost per byte moved host<->NIC (PCIe payload).
    pub nic_dma_ns_per_kb: u64,
    /// Cost for the NIC to DMA a completion entry to host memory.
    pub nic_cqe_dma_ns: u64,

    // ---- Wire ----
    /// Serialization cost per byte (100 Gb/s = 0.08 ns/byte → per KB).
    pub wire_ns_per_kb: u64,
    /// One-way propagation through cable + switch.
    pub wire_propagation_ns: u64,
    /// Per-packet framing overhead in bytes (Ethernet+IB headers).
    pub packet_overhead_bytes: usize,
    /// Wire MTU for packetization (distinct from transport message limits).
    pub wire_mtu: usize,

    // ---- Host CPU ----
    /// CPU cost of one MMIO doorbell (posting work to the NIC).
    pub cpu_doorbell_ns: u64,
    /// CPU cost of polling a completion queue entry (hit).
    pub cpu_poll_cqe_ns: u64,
    /// CPU cost of an empty completion-queue poll.
    pub cpu_poll_empty_ns: u64,
    /// CPU cost of posting (recycling) one receive buffer — the UD server
    /// overhead the paper highlights in §2.2 / Figure 2(b).
    pub cpu_post_recv_ns: u64,
    /// CPU cost to inspect a ring buffer slot when polling host memory
    /// (Flock's RC-write detection path).
    pub cpu_ring_poll_ns: u64,
    /// Amortized CPU per dispatcher sweep that detects work: walking the
    /// other (empty) rings between hits. Shared across the messages a
    /// sweep picks up — a major coalescing win (paper §8.3.1).
    pub cpu_ring_sweep_ns: u64,
    /// Mean delay before the client response dispatcher notices a landed
    /// response message (poll sweep latency).
    pub cpu_dispatcher_poll_ns: u64,
    /// CPU cost per byte for copying payloads (per KB).
    pub cpu_memcpy_ns_per_kb: u64,
    /// Fixed per-request CPU for encode/decode of message metadata.
    pub cpu_codec_ns: u64,
    /// Extra per-request CPU for UD RPC session bookkeeping (window
    /// management, software reliability timers — the eRPC overhead).
    pub cpu_erpc_session_ns: u64,
    /// CPU cost for a thread to enqueue on the TCQ / acquire a lock
    /// (uncontended atomic RMW).
    pub cpu_sync_ns: u64,
    /// Extra CPU when a lock is contended (spin + cacheline transfer).
    pub cpu_lock_contended_ns: u64,

    // ---- Control plane ----
    // Verbs control operations are orders of magnitude slower than the
    // data path (Swift, PAPERS.md): QP creation allocates NIC state over
    // PCIe config cycles, MR registration pins pages and installs MTT
    // entries. These price the elastic control plane (QP pool, MR cache).
    /// Full `ibv_create_qp` + INIT/RTR/RTS bring-up of a fresh QP.
    pub ctrl_create_qp_ns: u64,
    /// Recycling a pooled QP: modify-to-RESET plus re-transition to RTS
    /// (no allocation, no PCIe config cycles).
    pub ctrl_reset_qp_ns: u64,
    /// Fixed cost of `ibv_reg_mr`: syscall, pinning setup, MPT entry.
    pub ctrl_reg_mr_base_ns: u64,
    /// Per-KB cost of registration (page pinning + MTT installation).
    pub ctrl_reg_mr_ns_per_kb: u64,
    /// Cost of `ibv_dereg_mr` (unpinning, MTT teardown).
    pub ctrl_dereg_mr_ns: u64,
    /// Host CPU cost per KB to zero a recycled buffer (streaming stores;
    /// cheaper than a copy, which reads and writes).
    pub cpu_memset_ns_per_kb: u64,

    // ---- Application ----
    /// Baseline RPC handler execution cost.
    pub app_handler_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nic_processing_units: 6,
            nic_verb_ns: 50,
            nic_cached_state_ns: 15,
            nic_cache_miss_ns: 1_450,
            nic_read_extra_ns: 15,
            nic_atomic_extra_ns: 60,
            nic_cache_entries: 1024,
            nic_dma_ns_per_kb: 60,
            nic_cqe_dma_ns: 40,

            wire_ns_per_kb: 82, // ~100 Gb/s
            wire_propagation_ns: 350,
            packet_overhead_bytes: 66,
            wire_mtu: 4096,

            cpu_doorbell_ns: 400,
            cpu_poll_cqe_ns: 150,
            cpu_poll_empty_ns: 25,
            cpu_post_recv_ns: 450,
            cpu_ring_poll_ns: 30,
            cpu_ring_sweep_ns: 400,
            cpu_dispatcher_poll_ns: 250,
            cpu_memcpy_ns_per_kb: 300,
            cpu_codec_ns: 35,
            cpu_erpc_session_ns: 600,
            cpu_sync_ns: 24,
            cpu_lock_contended_ns: 160,

            ctrl_create_qp_ns: 80_000,
            ctrl_reset_qp_ns: 2_500,
            ctrl_reg_mr_base_ns: 30_000,
            ctrl_reg_mr_ns_per_kb: 800,
            ctrl_dereg_mr_ns: 8_000,
            cpu_memset_ns_per_kb: 60,

            app_handler_ns: 260,
        }
    }
}

impl CostModel {
    /// Time on the wire for `bytes` of payload, including per-packet
    /// framing overhead and packetization at the wire MTU.
    pub fn wire_time(&self, bytes: usize) -> Ns {
        let packets = self.packets(bytes);
        let total = bytes + packets * self.packet_overhead_bytes;
        Ns(self.wire_propagation_ns + (total as u64 * self.wire_ns_per_kb) / 1024)
    }

    /// Number of wire packets needed for a message of `bytes`.
    pub fn packets(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.wire_mtu).max(1)
    }

    /// NIC service time for processing one verb touching `bytes`,
    /// given whether the connection state was cached.
    pub fn nic_service(&self, bytes: usize, cache_hit: bool) -> Ns {
        let state = if cache_hit {
            self.nic_cached_state_ns
        } else {
            self.nic_cache_miss_ns
        };
        Ns(self.nic_verb_ns + state + (bytes as u64 * self.nic_dma_ns_per_kb) / 1024)
    }

    /// Host CPU time to memcpy `bytes`.
    pub fn memcpy_time(&self, bytes: usize) -> Ns {
        Ns((bytes as u64 * self.cpu_memcpy_ns_per_kb) / 1024)
    }

    /// Host CPU cost for the UD receive path of one packet:
    /// poll CQE + recycle the consumed receive buffer.
    pub fn ud_rx_cpu(&self) -> Ns {
        Ns(self.cpu_poll_cqe_ns + self.cpu_post_recv_ns)
    }

    /// Host CPU cost for detecting one coalesced message by polling a ring.
    pub fn ring_detect_cpu(&self) -> Ns {
        Ns(self.cpu_ring_poll_ns)
    }

    /// Control-plane cost of registering a fresh memory region of `bytes`
    /// (`ibv_reg_mr`: base syscall/MPT cost plus per-page pinning).
    pub fn reg_mr_time(&self, bytes: usize) -> Ns {
        Ns(self.ctrl_reg_mr_base_ns + (bytes as u64 * self.ctrl_reg_mr_ns_per_kb) / 1024)
    }

    /// Host CPU cost to zero `bytes` of a recycled buffer.
    pub fn memset_time(&self, bytes: usize) -> Ns {
        Ns((bytes as u64 * self.cpu_memset_ns_per_kb) / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.wire_time(64);
        let big = m.wire_time(64 * 1024);
        assert!(big > small);
        // 64 KB at ~100 Gb/s is ~5.2 us of serialization plus overheads.
        assert!(big.as_nanos() > 5_000 && big.as_nanos() < 12_000, "{big}");
    }

    #[test]
    fn packetization_at_mtu() {
        let m = CostModel::default();
        assert_eq!(m.packets(0), 1);
        assert_eq!(m.packets(1), 1);
        assert_eq!(m.packets(4096), 1);
        assert_eq!(m.packets(4097), 2);
        assert_eq!(m.packets(12_288), 3);
    }

    #[test]
    fn cache_miss_dominates_nic_service() {
        let m = CostModel::default();
        let hit = m.nic_service(64, true);
        let miss = m.nic_service(64, false);
        assert!(miss.as_nanos() > hit.as_nanos() + 1_000);
    }

    #[test]
    fn ud_rx_is_expensive_relative_to_ring_poll() {
        // The motivation for Flock's RC-write + memory-polling design:
        // per-packet UD receive CPU far exceeds a ring-buffer probe.
        let m = CostModel::default();
        assert!(m.ud_rx_cpu().as_nanos() > 4 * m.ring_detect_cpu().as_nanos());
    }

    #[test]
    fn warm_control_path_is_at_least_10x_cheaper() {
        // The elasticity story (Swift, PAPERS.md): a pooled-QP lease plus
        // a cached-MR reuse (reset + memset) must beat cold QP creation
        // plus registration by an order of magnitude, for the buffer
        // sizes the connection handle actually registers.
        let m = CostModel::default();
        for kb in [4usize, 16, 64] {
            let bytes = kb * 1024;
            let cold = m.ctrl_create_qp_ns + m.reg_mr_time(bytes).as_nanos();
            let warm = m.ctrl_reset_qp_ns + m.memset_time(bytes).as_nanos();
            assert!(cold >= 10 * warm, "kb={kb} cold={cold} warm={warm}");
        }
    }

    #[test]
    fn atomics_are_the_slowest_small_verb() {
        // The one-sided cost ladder for an 8-byte payload: ring write <
        // read < atomic. ALock's cohort rule (hand off locally, CAS
        // remotely once per burst) only pays off if the model agrees.
        let m = CostModel::default();
        let base = m.nic_service(8, true).as_nanos();
        assert!(m.nic_atomic_extra_ns > m.nic_read_extra_ns);
        assert!(base + m.nic_atomic_extra_ns > base + m.nic_read_extra_ns);
    }

    #[test]
    fn memcpy_is_linear() {
        let m = CostModel::default();
        let a = m.memcpy_time(1024).as_nanos();
        let b = m.memcpy_time(4096).as_nanos();
        assert_eq!(b, a * 4);
    }
}
