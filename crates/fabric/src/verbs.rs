//! Work requests and completions — the verbs-level data types.

use crate::types::{Lkey, NodeId, QpNum, Rkey, Transport, WrId};

/// A local scatter/gather element: a `(lkey, addr, len)` triple naming a
/// range inside a locally registered memory region.
#[derive(Debug, Clone, Copy)]
pub struct Sge {
    /// Local key of the region.
    pub lkey: Lkey,
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Length in bytes.
    pub len: usize,
}

/// A remote target: `(rkey, addr)` naming memory on the peer.
#[derive(Debug, Clone, Copy)]
pub struct RemoteAddr {
    /// Remote key of the target region.
    pub rkey: Rkey,
    /// Virtual address of the first byte on the remote node.
    pub addr: u64,
}

/// The operation carried by a send-side work request.
#[derive(Debug, Clone, Copy)]
pub enum SendOp {
    /// Two-sided send: payload lands in a receive buffer posted by the peer.
    Send {
        /// Payload source.
        local: Sge,
    },
    /// One-sided write into remote memory. No remote CPU or receive buffer.
    Write {
        /// Payload source.
        local: Sge,
        /// Destination on the peer.
        remote: RemoteAddr,
    },
    /// One-sided write that additionally delivers a 32-bit immediate to the
    /// peer's receive queue, consuming a posted receive buffer (used by
    /// Flock's credit-renewal channel, paper §7).
    WriteImm {
        /// Payload source.
        local: Sge,
        /// Destination on the peer.
        remote: RemoteAddr,
        /// Immediate data delivered in the receive completion.
        imm: u32,
    },
    /// One-sided read from remote memory into a local region.
    Read {
        /// Destination for the fetched bytes.
        local: Sge,
        /// Source on the peer.
        remote: RemoteAddr,
    },
    /// 8-byte remote fetch-and-add; the prior value lands in `local`.
    FetchAdd {
        /// 8-byte local destination for the old value.
        local: Sge,
        /// 8-byte aligned remote target.
        remote: RemoteAddr,
        /// Addend.
        add: u64,
    },
    /// 8-byte remote compare-and-swap; the prior value lands in `local`.
    CmpSwap {
        /// 8-byte local destination for the old value.
        local: Sge,
        /// 8-byte aligned remote target.
        remote: RemoteAddr,
        /// Expected value.
        expect: u64,
        /// Replacement value if the comparison succeeds.
        swap: u64,
    },
}

impl SendOp {
    /// Verb name for diagnostics.
    pub const fn name(&self) -> &'static str {
        match self {
            SendOp::Send { .. } => "send",
            SendOp::Write { .. } => "write",
            SendOp::WriteImm { .. } => "write_with_imm",
            SendOp::Read { .. } => "read",
            SendOp::FetchAdd { .. } => "fetch_and_add",
            SendOp::CmpSwap { .. } => "compare_and_swap",
        }
    }

    /// Payload length moved by this operation.
    pub const fn byte_len(&self) -> usize {
        match self {
            SendOp::Send { local }
            | SendOp::Write { local, .. }
            | SendOp::WriteImm { local, .. }
            | SendOp::Read { local, .. } => local.len,
            SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. } => 8,
        }
    }

    /// Whether `transport` supports this verb (paper Table 1).
    pub const fn supported_on(&self, transport: Transport) -> bool {
        match self {
            SendOp::Send { .. } => transport.supports_send_recv(),
            SendOp::Write { .. } | SendOp::WriteImm { .. } => transport.supports_write(),
            SendOp::Read { .. } => transport.supports_read(),
            SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. } => transport.supports_atomic(),
        }
    }
}

/// A send-side work request.
#[derive(Debug, Clone, Copy)]
pub struct SendWr {
    /// Caller identifier echoed in the completion.
    pub wr_id: WrId,
    /// The operation.
    pub op: SendOp,
    /// Whether a successful completion should be generated (selective
    /// signaling: unsignaled requests complete silently; errors always
    /// generate a completion).
    pub signaled: bool,
    /// Destination for UD sends; ignored (and must be `None`) on connected
    /// transports.
    pub dst: Option<(NodeId, QpNum)>,
}

impl SendWr {
    /// A signaled two-sided send on a connected QP.
    pub fn send(wr_id: WrId, local: Sge) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::Send { local },
            signaled: true,
            dst: None,
        }
    }

    /// A signaled UD send to `dst`.
    pub fn send_to(wr_id: WrId, local: Sge, dst: (NodeId, QpNum)) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::Send { local },
            signaled: true,
            dst: Some(dst),
        }
    }

    /// A signaled RDMA write.
    pub fn write(wr_id: WrId, local: Sge, remote: RemoteAddr) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::Write { local, remote },
            signaled: true,
            dst: None,
        }
    }

    /// A signaled RDMA write-with-immediate.
    pub fn write_imm(wr_id: WrId, local: Sge, remote: RemoteAddr, imm: u32) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::WriteImm { local, remote, imm },
            signaled: true,
            dst: None,
        }
    }

    /// A signaled RDMA read.
    pub fn read(wr_id: WrId, local: Sge, remote: RemoteAddr) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::Read { local, remote },
            signaled: true,
            dst: None,
        }
    }

    /// A signaled remote fetch-and-add.
    pub fn fetch_add(wr_id: WrId, local: Sge, remote: RemoteAddr, add: u64) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::FetchAdd { local, remote, add },
            signaled: true,
            dst: None,
        }
    }

    /// A signaled remote compare-and-swap.
    pub fn cmp_swap(wr_id: WrId, local: Sge, remote: RemoteAddr, expect: u64, swap: u64) -> SendWr {
        SendWr {
            wr_id,
            op: SendOp::CmpSwap {
                local,
                remote,
                expect,
                swap,
            },
            signaled: true,
            dst: None,
        }
    }

    /// Mark this request unsignaled (no success completion).
    pub fn unsignaled(mut self) -> SendWr {
        self.signaled = false;
        self
    }
}

/// A receive-side work request: a posted buffer.
#[derive(Debug, Clone, Copy)]
pub struct RecvWr {
    /// Caller identifier echoed in the completion.
    pub wr_id: WrId,
    /// Buffer to receive into.
    pub local: Sge,
}

/// Completion status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqStatus {
    /// The operation completed successfully.
    Success,
    /// A local protection/validation error (bad lkey, bounds).
    LocalProtectionError,
    /// The remote side rejected the access (bad rkey, rights, bounds).
    RemoteAccessError,
    /// Receiver-not-ready: the peer had no posted receive buffer (RC).
    RnrRetryExceeded,
    /// The QP transitioned to the error state and the request was flushed.
    WorkRequestFlushed,
}

/// Completion opcode: which kind of work finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqOpcode {
    /// A send-side send completed.
    Send,
    /// An RDMA write completed.
    Write,
    /// An RDMA read completed (data is in the local SGE).
    Read,
    /// A remote atomic completed (old value is in the local SGE).
    Atomic,
    /// An inbound two-sided message landed in a posted buffer.
    Recv,
    /// An inbound write-with-immediate consumed a posted buffer slot.
    RecvImm,
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Echo of the work request id.
    pub wr_id: WrId,
    /// Outcome.
    pub status: CqStatus,
    /// What completed.
    pub opcode: CqOpcode,
    /// Bytes moved (for receives: payload length, including the 40-byte
    /// GRH for UD).
    pub byte_len: usize,
    /// Immediate data, for [`CqOpcode::RecvImm`].
    pub imm: Option<u32>,
    /// Source addressing for UD receives.
    pub src: Option<(NodeId, QpNum)>,
    /// The local QP this completion belongs to.
    pub qpn: QpNum,
}

impl Completion {
    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == CqStatus::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sge(len: usize) -> Sge {
        Sge {
            lkey: Lkey(1),
            addr: 0x1000_0000,
            len,
        }
    }

    fn remote() -> RemoteAddr {
        RemoteAddr {
            rkey: Rkey(1),
            addr: 0x1000_0000,
        }
    }

    #[test]
    fn op_support_follows_table1() {
        let read = SendOp::Read {
            local: sge(8),
            remote: remote(),
        };
        assert!(read.supported_on(Transport::Rc));
        assert!(!read.supported_on(Transport::Uc));
        assert!(!read.supported_on(Transport::Ud));

        let write = SendOp::Write {
            local: sge(8),
            remote: remote(),
        };
        assert!(write.supported_on(Transport::Rc));
        assert!(write.supported_on(Transport::Uc));
        assert!(!write.supported_on(Transport::Ud));

        let send = SendOp::Send { local: sge(8) };
        assert!(send.supported_on(Transport::Rc));
        assert!(send.supported_on(Transport::Uc));
        assert!(send.supported_on(Transport::Ud));

        let faa = SendOp::FetchAdd {
            local: sge(8),
            remote: remote(),
            add: 1,
        };
        assert!(faa.supported_on(Transport::Rc));
        assert!(!faa.supported_on(Transport::Ud));
    }

    #[test]
    fn byte_len_reports_payload() {
        assert_eq!(SendOp::Send { local: sge(100) }.byte_len(), 100);
        assert_eq!(
            SendOp::FetchAdd {
                local: sge(8),
                remote: remote(),
                add: 1
            }
            .byte_len(),
            8
        );
    }

    #[test]
    fn builders_set_fields() {
        let wr = SendWr::write(WrId(7), sge(10), remote()).unsignaled();
        assert_eq!(wr.wr_id, WrId(7));
        assert!(!wr.signaled);
        assert!(wr.dst.is_none());
        let wr = SendWr::send_to(WrId(8), sge(10), (NodeId(1), QpNum(2)));
        assert_eq!(wr.dst, Some((NodeId(1), QpNum(2))));
    }

    #[test]
    fn op_names() {
        assert_eq!(SendOp::Send { local: sge(1) }.name(), "send");
        assert_eq!(
            SendOp::CmpSwap {
                local: sge(8),
                remote: remote(),
                expect: 0,
                swap: 1
            }
            .name(),
            "compare_and_swap"
        );
    }
}
