//! The fabric: the set of nodes, their NIC engines, and connection setup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use flock_sync::clock::{self, TaskHandle};
use parking_lot::{Mutex, RwLock};

use crate::cache::ConnCache;
use crate::cq::CompletionQueue;
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::mrcache::{MrCache, MrCacheConfig};
use crate::nic::{engine_loop, NicCmd, NicStats};
use crate::qp::Qp;
use crate::qpool::{QpPool, QpPoolConfig};
use crate::timing::CostModel;
use crate::types::{FabricError, NodeId, QpNum, Result, Transport};

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The timing/cost model (used for accounting and by DES models).
    pub cost: CostModel,
    /// Probability that a UD datagram is silently lost (loss injection for
    /// exercising software reliability layers). RC traffic never drops.
    pub ud_drop_probability: f64,
    /// Seed for loss injection and any other fabric randomness.
    pub seed: u64,
    /// NIC connection-cache entries per node (overrides the cost model's
    /// value for the stats cache attached to each node).
    pub nic_cache_entries: usize,
    /// Engine lanes per node. Work requests are sharded across lanes by
    /// QPN, so per-QP FIFO ordering is preserved (all RC guarantees)
    /// while unrelated QPs execute in parallel. Defaults to
    /// [`auto_nic_lanes`]; override for benchmarks sweeping the lane
    /// count.
    pub nic_lanes: usize,
    /// Per-node QP pool (the elastic control plane's warm-lease path).
    /// Disabled by default: leases cold-create, releases destroy.
    pub qpool: QpPoolConfig,
    /// Per-node MR registration cache. Disabled by default: acquires
    /// register cold, releases deregister.
    pub mr_cache: MrCacheConfig,
}

/// Default NIC lane count: the host's available parallelism, clamped to
/// `1..=4`. Extra lanes only add channel hops and cache traffic when
/// there are no spare cores to run them — on a 1-CPU host this picks the
/// single-lane path automatically.
pub fn auto_nic_lanes() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

impl Default for FabricConfig {
    fn default() -> Self {
        let cost = CostModel::default();
        let entries = cost.nic_cache_entries;
        FabricConfig {
            cost,
            ud_drop_probability: 0.0,
            seed: 0x5EED,
            nic_cache_entries: entries,
            nic_lanes: auto_nic_lanes(),
            qpool: QpPoolConfig::default(),
            mr_cache: MrCacheConfig::default(),
        }
    }
}

/// Shared fabric state, visible to NIC engines.
#[derive(Debug)]
pub struct FabricInner {
    pub(crate) nodes: RwLock<HashMap<NodeId, Arc<Node>>>,
    pub(crate) config: FabricConfig,
    next_node: AtomicU32,
}

impl FabricInner {
    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.nodes
            .read()
            .get(&id)
            .cloned()
            .ok_or(FabricError::NodeNotFound(id))
    }
}

/// A machine attached to the fabric: registered memory, queue pairs, a NIC
/// engine with a connection cache, and statistics.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    name: String,
    mrs: MrTable,
    qps: RwLock<HashMap<QpNum, Arc<Qp>>>,
    next_qpn: AtomicU32,
    cache: Mutex<ConnCache>,
    stats: NicStats,
    /// One command channel per engine lane; QPs are pinned to a lane by
    /// QPN at creation, preserving per-QP FIFO execution order.
    engine_txs: Vec<Sender<NicCmd>>,
    /// The cost model, for charging control-plane operations (QP
    /// creation/reset, MR registration) to the calling virtual task.
    cost: CostModel,
    /// Recycled-QP free list (see `crates/fabric/src/qpool.rs`).
    pool: QpPool,
    /// Parked-MR registration cache.
    mr_cache: Mutex<MrCache>,
    /// Placeholder CQ bound to pooled QPs while they sit in the free
    /// list; a lease rebinds to the lessee's real CQs.
    parked_cq: Arc<CompletionQueue>,
}

impl Node {
    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's memory-region table.
    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    /// The node's NIC connection cache (stats-bearing LRU model).
    pub fn cache(&self) -> &Mutex<ConnCache> {
        &self.cache
    }

    /// NIC statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Register a zeroed memory region of `len` bytes.
    pub fn register_mr(&self, len: usize, access: Access) -> Arc<MemoryRegion> {
        self.mrs.register(len, access)
    }

    /// Create a completion queue.
    pub fn create_cq(&self, capacity: usize) -> Arc<CompletionQueue> {
        CompletionQueue::new(capacity)
    }

    /// Create a queue pair in the `Init` state.
    pub fn create_qp(
        &self,
        transport: Transport,
        send_cq: &Arc<CompletionQueue>,
        recv_cq: &Arc<CompletionQueue>,
    ) -> Arc<Qp> {
        let qpn = QpNum(self.next_qpn.fetch_add(1, Ordering::Relaxed));
        // Pin the QP to a lane by QPN: all its work requests execute on
        // one engine thread, so per-QP FIFO ordering (all RC guarantees)
        // is preserved while unrelated QPs run on other lanes.
        let lane = qpn.0 as usize % self.engine_txs.len();
        let qp = Qp::new(
            self.id,
            qpn,
            transport,
            Arc::clone(send_cq),
            Arc::clone(recv_cq),
            self.engine_txs[lane].clone(),
        );
        self.qps.write().insert(qpn, Arc::clone(&qp));
        qp
    }

    /// Look up a queue pair by number.
    pub fn qp(&self, qpn: QpNum) -> Option<Arc<Qp>> {
        self.qps.read().get(&qpn).cloned()
    }

    /// Destroy a queue pair: it is removed from the node, its connection
    /// state is evicted from the NIC cache, and any work still queued in
    /// the engine for it is silently dropped (verbs `ibv_destroy_qp`
    /// semantics after moving through the error state).
    pub fn destroy_qp(&self, qpn: QpNum) -> bool {
        let removed = self.qps.write().remove(&qpn);
        if let Some(qp) = &removed {
            qp.set_error();
            self.cache
                .lock()
                .invalidate(crate::cache::qp_state_key(self.id.0, qpn.0));
        }
        removed.is_some()
    }

    /// Number of queue pairs on this node.
    pub fn qp_count(&self) -> usize {
        self.qps.read().len()
    }

    /// Route an engine command to the lane that owns `qpn` — the same
    /// QPN→lane pinning as [`Node::create_qp`], so responder work
    /// forwarded for one QP executes in FIFO order on one lane. Used by
    /// the virtual engine to hand one-sided verbs to the responder
    /// node's NIC.
    pub(crate) fn forward_cmd(&self, qpn: QpNum, cmd: NicCmd) {
        let lane = qpn.0 as usize % self.engine_txs.len();
        let _ = self.engine_txs[lane].send(cmd);
    }

    /// The node's QP pool.
    pub fn pool(&self) -> &QpPool {
        &self.pool
    }

    /// The node's MR registration cache.
    pub fn mr_cache(&self) -> &Mutex<MrCache> {
        &self.mr_cache
    }

    /// Lease a QP: recycle one from the pool (reset + CQ rebind,
    /// charging [`CostModel::ctrl_reset_qp_ns`]) when possible, fall
    /// back to a cold [`Node::create_qp`] (charging
    /// [`CostModel::ctrl_create_qp_ns`]) otherwise. Only RC QPs pool —
    /// the connection-oriented state is what is expensive to rebuild.
    ///
    /// Hot-path entry point for `cargo xtask lint` (the connect path is
    /// a measured hot path under churn): warm leases are
    /// allocation-free.
    pub fn lease_qp(
        &self,
        transport: Transport,
        send_cq: &Arc<CompletionQueue>,
        recv_cq: &Arc<CompletionQueue>,
    ) -> Arc<Qp> {
        self.pool.stats().bump(&self.pool.stats().leases);
        if transport == Transport::Rc {
            if let Some(qp) = self.pool.take() {
                qp.rebind_cqs(send_cq, recv_cq);
                clock::charge(self.cost.ctrl_reset_qp_ns);
                self.pool.stats().bump(&self.pool.stats().warm);
                return qp;
            }
        }
        clock::charge(self.cost.ctrl_create_qp_ns);
        self.pool.stats().bump(&self.pool.stats().cold);
        self.create_qp(transport, send_cq, recv_cq)
    }

    /// Release a leased QP: reset it (bumping its lease epoch so stale
    /// queued work is dropped by the engine) and park it in the pool;
    /// destroy it when the pool is disabled, full, or the transport is
    /// not RC. Charges [`CostModel::ctrl_reset_qp_ns`] — the
    /// modify-to-RESET verb — never the creation cost.
    ///
    /// Hot-path entry point for `cargo xtask lint`: allocation-free when
    /// the QP is pooled.
    pub fn release_qp(&self, qp: &Arc<Qp>) {
        qp.reset();
        clock::charge(self.cost.ctrl_reset_qp_ns);
        self.cache
            .lock()
            .invalidate(crate::cache::qp_state_key(self.id.0, qp.qpn().0));
        qp.rebind_cqs(&self.parked_cq, &self.parked_cq);
        self.pool.stats().bump(&self.pool.stats().recycled);
        if qp.transport() != Transport::Rc || !self.pool.put(Arc::clone(qp)) {
            self.pool.stats().bump(&self.pool.stats().discarded);
            self.destroy_qp(qp.qpn());
        }
    }

    /// Cold-create one pooled RC QP (bound to the placeholder CQ) and
    /// park it. Used by the background refill task and by explicit
    /// pre-warming; charges the full creation cost to the caller.
    /// Returns `false` if the pool refused it (disabled or full).
    pub fn refill_one_qp(&self) -> bool {
        let qp = self.create_qp(Transport::Rc, &self.parked_cq, &self.parked_cq);
        clock::charge(self.cost.ctrl_create_qp_ns);
        if self.pool.put(Arc::clone(&qp)) {
            true
        } else {
            self.destroy_qp(qp.qpn());
            false
        }
    }

    /// Pre-fill the pool with `n` cold-created QPs (charged to the
    /// caller — benchmarks do this during setup, before measuring).
    /// Returns how many were actually parked.
    pub fn prewarm_qps(&self, n: usize) -> usize {
        let mut parked = 0;
        for _ in 0..n {
            if !self.refill_one_qp() {
                break;
            }
            self.pool.stats().bump(&self.pool.stats().refilled);
            parked += 1;
        }
        parked
    }

    /// Acquire a registered region of `len` bytes: reuse a parked region
    /// of identical layout (zeroing it — ring canary protocols depend on
    /// fresh buffers — and charging only [`CostModel::memset_time`]), or
    /// register cold, charging the Swift-style penalty
    /// [`CostModel::reg_mr_time`].
    pub fn acquire_mr(&self, len: usize, access: Access) -> Arc<MemoryRegion> {
        if let Some(mr) = self.mr_cache.lock().take(len, access) {
            mr.with_write(|b| b.fill(0));
            clock::charge(self.cost.memset_time(len).as_nanos());
            return mr;
        }
        clock::charge(self.cost.reg_mr_time(len).as_nanos());
        self.mrs.register(len, access)
    }

    /// Release a region acquired via [`Node::acquire_mr`]: park it for
    /// reuse, deregistering (and charging
    /// [`CostModel::ctrl_dereg_mr_ns`]) whatever the cache evicts — the
    /// region itself when the cache is disabled.
    pub fn release_mr(&self, mr: &Arc<MemoryRegion>) {
        let evicted = self.mr_cache.lock().put(Arc::clone(mr));
        for victim in evicted {
            self.mrs.deregister(victim.lkey());
            clock::charge(self.cost.ctrl_dereg_mr_ns);
        }
    }
}

/// The top-level fabric handle. Dropping it stops all NIC engines.
#[derive(Debug)]
pub struct Fabric {
    inner: Arc<FabricInner>,
    engines: Mutex<Vec<(Sender<NicCmd>, TaskHandle)>>,
    /// Background QP-pool refill tasks (one per node, only when the pool
    /// is enabled with a low watermark) and their stop flag.
    refillers: Mutex<Vec<TaskHandle>>,
    refill_stop: Arc<AtomicBool>,
}

impl Fabric {
    /// Create an empty fabric.
    pub fn new(config: FabricConfig) -> Fabric {
        Fabric {
            inner: Arc::new(FabricInner {
                nodes: RwLock::new(HashMap::new()),
                config,
                next_node: AtomicU32::new(0),
            }),
            engines: Mutex::new(Vec::new()),
            refillers: Mutex::new(Vec::new()),
            refill_stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Create a fabric with default configuration.
    pub fn with_defaults() -> Fabric {
        Fabric::new(FabricConfig::default())
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.config
    }

    /// Attach a new node and start its NIC engine lanes
    /// (`config.nic_lanes` threads; at least one).
    pub fn add_node(&self, name: &str) -> Arc<Node> {
        let id = NodeId(self.inner.next_node.fetch_add(1, Ordering::Relaxed));
        let lanes = self.inner.config.nic_lanes.max(1);
        let channels: Vec<_> = (0..lanes).map(|_| unbounded()).collect();
        let node = Arc::new(Node {
            id,
            name: name.to_string(),
            mrs: MrTable::new(),
            qps: RwLock::new(HashMap::new()),
            next_qpn: AtomicU32::new(1),
            cache: Mutex::new(ConnCache::new(self.inner.config.nic_cache_entries)),
            stats: NicStats::default(),
            engine_txs: channels.iter().map(|(tx, _)| tx.clone()).collect(),
            cost: self.inner.config.cost.clone(),
            pool: QpPool::new(self.inner.config.qpool.clone()),
            mr_cache: Mutex::new(MrCache::new(self.inner.config.mr_cache.clone())),
            parked_cq: CompletionQueue::new(1),
        });
        self.inner.nodes.write().insert(id, Arc::clone(&node));
        for (lane, (tx, rx)) in channels.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let node2 = Arc::clone(&node);
            // Through the clock seam: a real thread normally, a
            // virtual core under `flock_sim::VirtualLab`.
            let handle = clock::spawn(&format!("nic-{name}/{lane}"), move || {
                engine_loop(inner, node2, rx, lane)
            });
            self.engines.lock().push((tx, handle));
        }
        let qcfg = &self.inner.config.qpool;
        if qcfg.enabled && qcfg.low_watermark > 0 {
            // Low-watermark background refill, through the clock seam so
            // creation cost is charged to this task's (virtual) time —
            // off every client's connect path.
            let node2 = Arc::clone(&node);
            let stop = Arc::clone(&self.refill_stop);
            let interval = qcfg.refill_interval_ns.max(1);
            let batch = qcfg.refill_batch.max(1);
            let handle = clock::spawn(&format!("qpool-{name}"), move || {
                while !stop.load(Ordering::Acquire) {
                    clock::sleep_ns(interval);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if node2.pool().below_watermark() {
                        for _ in 0..batch {
                            if !node2.refill_one_qp() {
                                break;
                            }
                            node2.pool().stats().bump(&node2.pool().stats().refilled);
                        }
                    }
                }
            });
            self.refillers.lock().push(handle);
        }
        node
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.inner.node(id)
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Connect two queue pairs (RC or UC). Both transition to RTS.
    pub fn connect(&self, a: &Qp, b: &Qp) -> Result<()> {
        connect_qps(a, b)
    }

    /// Stop all NIC engines and background refill tasks and wait for
    /// them to exit. Called by `Drop`; explicit invocation is
    /// idempotent.
    pub fn shutdown(&self) {
        self.refill_stop.store(true, Ordering::Release);
        for handle in self.refillers.lock().drain(..) {
            let _ = handle.join();
        }
        let mut engines = self.engines.lock();
        for (tx, _) in engines.iter() {
            let _ = tx.send(NicCmd::Stop);
        }
        for (_, handle) in engines.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connect two queue pairs (RC or UC) without needing the [`Fabric`]
/// handle. Both transition to RTS.
pub fn connect_qps(a: &Qp, b: &Qp) -> Result<()> {
    if a.transport() != b.transport() {
        return Err(FabricError::UnsupportedVerb {
            transport: a.transport(),
            verb: "connect across transports",
        });
    }
    a.set_connected((b.node(), b.qpn()))?;
    b.set_connected((a.node(), a.qpn()))?;
    Ok(())
}
