//! The fabric: the set of nodes, their NIC engines, and connection setup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use flock_sync::clock::{self, TaskHandle};
use parking_lot::{Mutex, RwLock};

use crate::cache::ConnCache;
use crate::cq::CompletionQueue;
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::nic::{engine_loop, NicCmd, NicStats};
use crate::qp::Qp;
use crate::timing::CostModel;
use crate::types::{FabricError, NodeId, QpNum, Result, Transport};

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The timing/cost model (used for accounting and by DES models).
    pub cost: CostModel,
    /// Probability that a UD datagram is silently lost (loss injection for
    /// exercising software reliability layers). RC traffic never drops.
    pub ud_drop_probability: f64,
    /// Seed for loss injection and any other fabric randomness.
    pub seed: u64,
    /// NIC connection-cache entries per node (overrides the cost model's
    /// value for the stats cache attached to each node).
    pub nic_cache_entries: usize,
    /// Engine lanes per node. Work requests are sharded across lanes by
    /// QPN, so per-QP FIFO ordering is preserved (all RC guarantees)
    /// while unrelated QPs execute in parallel. Defaults to
    /// [`auto_nic_lanes`]; override for benchmarks sweeping the lane
    /// count.
    pub nic_lanes: usize,
}

/// Default NIC lane count: the host's available parallelism, clamped to
/// `1..=4`. Extra lanes only add channel hops and cache traffic when
/// there are no spare cores to run them — on a 1-CPU host this picks the
/// single-lane path automatically.
pub fn auto_nic_lanes() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

impl Default for FabricConfig {
    fn default() -> Self {
        let cost = CostModel::default();
        let entries = cost.nic_cache_entries;
        FabricConfig {
            cost,
            ud_drop_probability: 0.0,
            seed: 0x5EED,
            nic_cache_entries: entries,
            nic_lanes: auto_nic_lanes(),
        }
    }
}

/// Shared fabric state, visible to NIC engines.
#[derive(Debug)]
pub struct FabricInner {
    pub(crate) nodes: RwLock<HashMap<NodeId, Arc<Node>>>,
    pub(crate) config: FabricConfig,
    next_node: AtomicU32,
}

impl FabricInner {
    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.nodes
            .read()
            .get(&id)
            .cloned()
            .ok_or(FabricError::NodeNotFound(id))
    }
}

/// A machine attached to the fabric: registered memory, queue pairs, a NIC
/// engine with a connection cache, and statistics.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    name: String,
    mrs: MrTable,
    qps: RwLock<HashMap<QpNum, Arc<Qp>>>,
    next_qpn: AtomicU32,
    cache: Mutex<ConnCache>,
    stats: NicStats,
    /// One command channel per engine lane; QPs are pinned to a lane by
    /// QPN at creation, preserving per-QP FIFO execution order.
    engine_txs: Vec<Sender<NicCmd>>,
}

impl Node {
    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's memory-region table.
    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    /// The node's NIC connection cache (stats-bearing LRU model).
    pub fn cache(&self) -> &Mutex<ConnCache> {
        &self.cache
    }

    /// NIC statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Register a zeroed memory region of `len` bytes.
    pub fn register_mr(&self, len: usize, access: Access) -> Arc<MemoryRegion> {
        self.mrs.register(len, access)
    }

    /// Create a completion queue.
    pub fn create_cq(&self, capacity: usize) -> Arc<CompletionQueue> {
        CompletionQueue::new(capacity)
    }

    /// Create a queue pair in the `Init` state.
    pub fn create_qp(
        &self,
        transport: Transport,
        send_cq: &Arc<CompletionQueue>,
        recv_cq: &Arc<CompletionQueue>,
    ) -> Arc<Qp> {
        let qpn = QpNum(self.next_qpn.fetch_add(1, Ordering::Relaxed));
        // Pin the QP to a lane by QPN: all its work requests execute on
        // one engine thread, so per-QP FIFO ordering (all RC guarantees)
        // is preserved while unrelated QPs run on other lanes.
        let lane = qpn.0 as usize % self.engine_txs.len();
        let qp = Qp::new(
            self.id,
            qpn,
            transport,
            Arc::clone(send_cq),
            Arc::clone(recv_cq),
            self.engine_txs[lane].clone(),
        );
        self.qps.write().insert(qpn, Arc::clone(&qp));
        qp
    }

    /// Look up a queue pair by number.
    pub fn qp(&self, qpn: QpNum) -> Option<Arc<Qp>> {
        self.qps.read().get(&qpn).cloned()
    }

    /// Destroy a queue pair: it is removed from the node, its connection
    /// state is evicted from the NIC cache, and any work still queued in
    /// the engine for it is silently dropped (verbs `ibv_destroy_qp`
    /// semantics after moving through the error state).
    pub fn destroy_qp(&self, qpn: QpNum) -> bool {
        let removed = self.qps.write().remove(&qpn);
        if let Some(qp) = &removed {
            qp.set_error();
            self.cache
                .lock()
                .invalidate(crate::cache::qp_state_key(self.id.0, qpn.0));
        }
        removed.is_some()
    }

    /// Number of queue pairs on this node.
    pub fn qp_count(&self) -> usize {
        self.qps.read().len()
    }
}

/// The top-level fabric handle. Dropping it stops all NIC engines.
#[derive(Debug)]
pub struct Fabric {
    inner: Arc<FabricInner>,
    engines: Mutex<Vec<(Sender<NicCmd>, TaskHandle)>>,
}

impl Fabric {
    /// Create an empty fabric.
    pub fn new(config: FabricConfig) -> Fabric {
        Fabric {
            inner: Arc::new(FabricInner {
                nodes: RwLock::new(HashMap::new()),
                config,
                next_node: AtomicU32::new(0),
            }),
            engines: Mutex::new(Vec::new()),
        }
    }

    /// Create a fabric with default configuration.
    pub fn with_defaults() -> Fabric {
        Fabric::new(FabricConfig::default())
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.config
    }

    /// Attach a new node and start its NIC engine lanes
    /// (`config.nic_lanes` threads; at least one).
    pub fn add_node(&self, name: &str) -> Arc<Node> {
        let id = NodeId(self.inner.next_node.fetch_add(1, Ordering::Relaxed));
        let lanes = self.inner.config.nic_lanes.max(1);
        let channels: Vec<_> = (0..lanes).map(|_| unbounded()).collect();
        let node = Arc::new(Node {
            id,
            name: name.to_string(),
            mrs: MrTable::new(),
            qps: RwLock::new(HashMap::new()),
            next_qpn: AtomicU32::new(1),
            cache: Mutex::new(ConnCache::new(self.inner.config.nic_cache_entries)),
            stats: NicStats::default(),
            engine_txs: channels.iter().map(|(tx, _)| tx.clone()).collect(),
        });
        self.inner.nodes.write().insert(id, Arc::clone(&node));
        for (lane, (tx, rx)) in channels.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let node2 = Arc::clone(&node);
            // Through the clock seam: a real thread normally, a
            // virtual core under `flock_sim::VirtualLab`.
            let handle = clock::spawn(&format!("nic-{name}/{lane}"), move || {
                engine_loop(inner, node2, rx, lane)
            });
            self.engines.lock().push((tx, handle));
        }
        node
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.inner.node(id)
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Connect two queue pairs (RC or UC). Both transition to RTS.
    pub fn connect(&self, a: &Qp, b: &Qp) -> Result<()> {
        connect_qps(a, b)
    }

    /// Stop all NIC engines and wait for them to exit. Called by `Drop`;
    /// explicit invocation is idempotent.
    pub fn shutdown(&self) {
        let mut engines = self.engines.lock();
        for (tx, _) in engines.iter() {
            let _ = tx.send(NicCmd::Stop);
        }
        for (_, handle) in engines.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connect two queue pairs (RC or UC) without needing the [`Fabric`]
/// handle. Both transition to RTS.
pub fn connect_qps(a: &Qp, b: &Qp) -> Result<()> {
    if a.transport() != b.transport() {
        return Err(FabricError::UnsupportedVerb {
            transport: a.transport(),
            verb: "connect across transports",
        });
    }
    a.set_connected((b.node(), b.qpn()))?;
    b.set_connected((a.node(), a.qpn()))?;
    Ok(())
}
