//! The NIC engine: background threads ("lanes") per node that execute
//! posted work requests against the in-process fabric.
//!
//! Each node runs `FabricConfig::nic_lanes` engine lanes; a QP is pinned
//! to one lane by QPN at creation, so work requests of one QP execute in
//! FIFO order (all RC guarantees) while unrelated QPs proceed in
//! parallel — the same sharding real NICs apply across their processing
//! units.
//!
//! The engine performs real memory movement (so two-sided and one-sided
//! semantics are exercised end to end) — zero-copy, via
//! [`MemoryRegion::dma_to`], one guarded `memcpy` from source MR to
//! destination MR with no per-verb scratch buffer — records
//! connection-cache accesses on both endpoints, and DMAs completions to
//! the relevant CQs. Errors surface as error-status completions and
//! transition the QP to the error state, mirroring verbs behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, TryRecvError};
use flock_sync::clock;
use flock_sync::AdaptiveBackoff;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cache::qp_state_key;
use crate::fabric::{FabricInner, Node};
use crate::mr::Access;
use crate::types::{FabricError, NodeId, QpNum, QpState, Result};
use crate::verbs::{Completion, CqOpcode, CqStatus, RecvWr, SendOp, SendWr, Sge};

/// Size of the global routing header prefixed to UD receive payloads.
pub const GRH_BYTES: usize = 40;

/// Commands accepted by a node's NIC engine.
#[derive(Debug)]
pub enum NicCmd {
    /// Execute a send-side work request posted on `src_qpn`.
    Post {
        /// The posting queue pair.
        src_qpn: QpNum,
        /// The QP's lease epoch at post time ([`crate::qp::Qp::epoch`]).
        /// The engine drops work whose epoch no longer matches: the QP
        /// was reset (recycled into the pool) after this was posted.
        epoch: u64,
        /// The work request.
        wr: SendWr,
    },
    /// A one-sided verb (READ / FetchAdd / CmpSwap) arriving at the
    /// *responder* node's engine. In virtual time the requester lane
    /// charges only the issue cost (WQE fetch + connection-state
    /// lookup) and forwards the verb here, because the expensive half
    /// of a one-sided op — fetching the payload over PCIe and
    /// generating the response — runs on the responder NIC's
    /// processing units and competes with every other client's verbs
    /// for them and for the responder's connection cache. This is the
    /// serialization that coalesced RPC amortizes away at high fan-in
    /// (paper §2, §8.3.1).
    Respond {
        /// Node that posted the verb (owns the QP, CQ, and local MR).
        req_node: NodeId,
        /// The posting queue pair on `req_node`.
        src_qpn: QpNum,
        /// The responder-side queue pair, whose connection state is
        /// what the responder NIC must have resident.
        dst_qpn: QpNum,
        /// The posting QP's lease epoch at post time.
        epoch: u64,
        /// The work request.
        wr: SendWr,
    },
    /// Stop the engine thread.
    Stop,
}

/// Per-node NIC statistics (atomically updated by the engine).
#[derive(Debug, Default)]
pub struct NicStats {
    /// Total verbs executed.
    pub verbs: AtomicU64,
    /// Total payload bytes moved.
    pub bytes: AtomicU64,
    /// Two-sided sends delivered.
    pub sends: AtomicU64,
    /// One-sided writes executed.
    pub writes: AtomicU64,
    /// One-sided reads executed.
    pub reads: AtomicU64,
    /// Remote atomics executed.
    pub atomics: AtomicU64,
    /// RC sends that failed with receiver-not-ready.
    pub rnr_failures: AtomicU64,
    /// UD datagrams dropped (loss injection or no receive buffer).
    pub ud_drops: AtomicU64,
}

impl NicStats {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Engine lane main loop; runs on a dedicated thread owned by the
/// fabric (a cooperatively scheduled virtual core under
/// `flock_sim::VirtualLab`). `lane` only perturbs the loss-injection RNG
/// so lanes draw independent streams.
pub(crate) fn engine_loop(
    fabric: Arc<FabricInner>,
    node: Arc<Node>,
    rx: Receiver<NicCmd>,
    lane: usize,
) {
    let mut rng = SmallRng::seed_from_u64(
        fabric.config.seed ^ (node.id().0 as u64) << 17 ^ (lane as u64) << 40,
    );
    if clock::is_virtual() {
        engine_loop_virtual(&fabric, &node, &rx, &mut rng);
        return;
    }
    while let Ok(cmd) = rx.recv() {
        match cmd {
            NicCmd::Post { src_qpn, epoch, wr } => {
                process(&fabric, &node, src_qpn, epoch, wr, &mut rng)
            }
            // Threaded engines execute one-sided verbs inline on the
            // requester lane (timing is accounting-only there), so no
            // Respond is ever forwarded; handle it anyway so a mixed
            // setup degrades to correct execution.
            NicCmd::Respond {
                req_node,
                src_qpn,
                epoch,
                wr,
                ..
            } => {
                if let Ok(req) = fabric.node(req_node) {
                    process(&fabric, &req, src_qpn, epoch, wr, &mut rng);
                }
            }
            NicCmd::Stop => break,
        }
    }
}

/// Virtual-time engine loop: a blocking `recv` would freeze the lab's
/// only running core, so the lane polls its command channel and yields
/// idle rounds to the virtual scheduler. Each verb *sleeps* its NIC
/// service time (per the fabric's [`crate::timing::CostModel`]) before
/// executing, which is what serializes a lane's throughput in virtual
/// time: one lane processes at most `1s / nic_service` verbs per virtual
/// second, and QPs sharded across lanes genuinely overlap. Because one
/// lane is one task, per-QP FIFO order is exactly the threaded
/// behaviour.
fn engine_loop_virtual(
    fabric: &Arc<FabricInner>,
    node: &Arc<Node>,
    rx: &Receiver<NicCmd>,
    rng: &mut SmallRng,
) {
    // An idle NIC lane re-polls quickly (hardware notices doorbells in
    // well under a microsecond); the tight virtual cap bounds added
    // detection latency to 2 µs even after long idle stretches.
    let mut idler =
        AdaptiveBackoff::new(std::time::Duration::from_micros(2)).with_virtual_cap(2_000);
    loop {
        match rx.try_recv() {
            Ok(NicCmd::Post { src_qpn, epoch, wr }) => {
                idler.reset();
                match one_sided_target(fabric, node, src_qpn, &wr) {
                    Some((dst, dst_qpn)) => {
                        // One-sided verb: the requester NIC only
                        // fetches the WQE and looks up its connection
                        // state before the request packet leaves; the
                        // payload DMA and response generation are the
                        // responder NIC's work. Charge the issue half
                        // here, then queue the responder half on the
                        // destination node's lane (sharded by the
                        // responder QPN, so per-QP FIFO order holds).
                        clock::sleep_ns(issue_service_ns(&fabric.config.cost, node, src_qpn));
                        dst.forward_cmd(
                            dst_qpn,
                            NicCmd::Respond {
                                req_node: node.id(),
                                src_qpn,
                                dst_qpn,
                                epoch,
                                wr,
                            },
                        );
                    }
                    None => {
                        clock::sleep_ns(virtual_service_ns(
                            &fabric.config.cost,
                            node,
                            src_qpn,
                            &wr,
                        ));
                        process(fabric, node, src_qpn, epoch, wr, rng);
                    }
                }
            }
            Ok(NicCmd::Respond {
                req_node,
                src_qpn,
                dst_qpn,
                epoch,
                wr,
            }) => {
                idler.reset();
                // `node` is the responder here: service time is priced
                // by whether *this* NIC has the responder-side QP state
                // resident — the fan-in effect: past the cache size,
                // every one-sided verb pays the PCIe state fetch.
                clock::sleep_ns(responder_service_ns(&fabric.config.cost, node, dst_qpn, &wr));
                if let Ok(req) = fabric.node(req_node) {
                    process(fabric, &req, src_qpn, epoch, wr, rng);
                }
            }
            Ok(NicCmd::Stop) | Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => idler.idle(),
        }
    }
}

/// Resolve the responder for a one-sided verb, when it can run on the
/// destination node's engine: returns the destination node and the
/// responder-side QPN for READ / FetchAdd / CmpSwap. Two-sided sends
/// and ring writes return `None` — their responder-side work is the
/// receive path, which the host-CPU model already prices — as do
/// unresolvable destinations (the requester lane then surfaces the
/// error through the normal path).
fn one_sided_target(
    fabric: &FabricInner,
    node: &Node,
    src_qpn: QpNum,
    wr: &SendWr,
) -> Option<(Arc<Node>, QpNum)> {
    if !matches!(
        wr.op,
        SendOp::Read { .. } | SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. }
    ) {
        return None;
    }
    let qp = node.qp(src_qpn)?;
    let (dst_id, dst_qpn) = qp.remote().or(wr.dst)?;
    let dst = fabric.node(dst_id).ok()?;
    Some((dst, dst_qpn))
}

/// Requester-side cost of issuing a one-sided verb: WQE fetch plus the
/// posting QP's connection-state lookup. No payload bytes move through
/// the requester NIC at issue time.
fn issue_service_ns(cost: &crate::timing::CostModel, node: &Node, src_qpn: QpNum) -> u64 {
    let hit = node
        .cache()
        .lock()
        .contains(qp_state_key(node.id().0, src_qpn.0));
    cost.nic_service(0, hit).as_nanos()
}

/// Responder-side cost of executing a one-sided verb: connection-state
/// lookup in the *responder's* NIC cache, payload DMA over its PCIe
/// link, the read/atomic surcharge, and the CQE DMA for the completion
/// it will generate back at the requester.
fn responder_service_ns(
    cost: &crate::timing::CostModel,
    node: &Node,
    dst_qpn: QpNum,
    wr: &SendWr,
) -> u64 {
    let bytes = match wr.op {
        SendOp::Send { local }
        | SendOp::Write { local, .. }
        | SendOp::WriteImm { local, .. }
        | SendOp::Read { local, .. } => local.len,
        SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. } => 8,
    };
    let hit = node
        .cache()
        .lock()
        .contains(qp_state_key(node.id().0, dst_qpn.0));
    let mut ns = cost.nic_service(bytes, hit).as_nanos();
    if matches!(wr.op, SendOp::Read { .. }) {
        ns += cost.nic_read_extra_ns;
    }
    if matches!(wr.op, SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. }) {
        ns += cost.nic_atomic_extra_ns;
    }
    if wr.signaled {
        ns += cost.nic_cqe_dma_ns;
    }
    ns
}

/// Virtual NIC service time for one work request executed entirely on
/// the requester lane (two-sided sends, ring writes, and one-sided
/// verbs whose destination could not be resolved): base verb cost plus
/// connection-state lookup (priced by whether the posting QP's state is
/// resident in the NIC cache — the actual hit/miss is recorded by
/// `process` with the same key), DMA per byte, read-responder surcharge,
/// and CQE DMA when a completion will be generated.
fn virtual_service_ns(
    cost: &crate::timing::CostModel,
    node: &Node,
    src_qpn: QpNum,
    wr: &SendWr,
) -> u64 {
    let bytes = match wr.op {
        SendOp::Send { local }
        | SendOp::Write { local, .. }
        | SendOp::WriteImm { local, .. }
        | SendOp::Read { local, .. } => local.len,
        SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. } => 8,
    };
    let hit = node
        .cache()
        .lock()
        .contains(qp_state_key(node.id().0, src_qpn.0));
    let mut ns = cost.nic_service(bytes, hit).as_nanos();
    if matches!(wr.op, SendOp::Read { .. }) {
        ns += cost.nic_read_extra_ns;
    }
    if matches!(wr.op, SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. }) {
        ns += cost.nic_atomic_extra_ns;
    }
    if wr.signaled {
        ns += cost.nic_cqe_dma_ns;
    }
    ns
}

fn process(
    fabric: &FabricInner,
    node: &Arc<Node>,
    src_qpn: QpNum,
    epoch: u64,
    wr: SendWr,
    rng: &mut SmallRng,
) {
    let Some(qp) = node.qp(src_qpn) else {
        return; // QP destroyed after posting; nothing to complete into.
    };
    if qp.epoch() != epoch {
        // Posted in a previous lease; the QP was reset (recycled into
        // the node's pool) since. Executing would target the *new*
        // lessee's connection, and completing would land in the new
        // lessee's CQ — drop silently, like work on a destroyed QP.
        return;
    }
    if qp.state() == QpState::Error {
        complete_send(node, src_qpn, &wr, CqStatus::WorkRequestFlushed, 0);
        return;
    }
    if qp.state() == QpState::Init {
        // Reset between the epoch check and here, or posted on a QP that
        // was never brought up: nothing valid to execute against.
        return;
    }

    // Touch the source-side connection state in the NIC cache.
    node.cache()
        .lock()
        .access(qp_state_key(node.id().0, src_qpn.0));

    let result = execute(fabric, node, &qp, &wr, rng);
    match result {
        Ok(bytes) => {
            node.stats().verbs.fetch_add(1, Ordering::Relaxed);
            node.stats()
                .bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            if wr.signaled {
                complete_send(node, src_qpn, &wr, CqStatus::Success, bytes);
            }
        }
        Err(e) => {
            let status = match e {
                FabricError::BadLkey(_) => CqStatus::LocalProtectionError,
                FabricError::NoReceiveBuffer => {
                    node.stats().bump(&node.stats().rnr_failures);
                    CqStatus::RnrRetryExceeded
                }
                FabricError::AccessViolation { .. }
                | FabricError::BadRkey(_)
                | FabricError::Misaligned(_)
                | FabricError::ReceiveBufferTooSmall { .. } => CqStatus::RemoteAccessError,
                _ => CqStatus::RemoteAccessError,
            };
            qp.set_error();
            complete_send(node, src_qpn, &wr, status, 0);
        }
    }
}

fn complete_send(node: &Node, qpn: QpNum, wr: &SendWr, status: CqStatus, bytes: usize) {
    let opcode = match wr.op {
        SendOp::Send { .. } => CqOpcode::Send,
        SendOp::Write { .. } | SendOp::WriteImm { .. } => CqOpcode::Write,
        SendOp::Read { .. } => CqOpcode::Read,
        SendOp::FetchAdd { .. } | SendOp::CmpSwap { .. } => CqOpcode::Atomic,
    };
    if let Some(qp) = node.qp(qpn) {
        qp.send_cq().push(Completion {
            wr_id: wr.wr_id,
            status,
            opcode,
            byte_len: bytes,
            imm: None,
            src: None,
            qpn,
        });
    }
}

/// Execute the data movement for `wr`; returns bytes moved.
fn execute(
    fabric: &FabricInner,
    node: &Arc<Node>,
    qp: &crate::qp::Qp,
    wr: &SendWr,
    rng: &mut SmallRng,
) -> Result<usize> {
    let dst_addr = match qp.remote() {
        Some(peer) => peer,
        None => wr.dst.ok_or(FabricError::MissingDestination)?,
    };
    let (dst_node_id, dst_qpn) = dst_addr;
    let dst_node = fabric.node(dst_node_id)?;
    let dst_qp = dst_node
        .qp(dst_qpn)
        .ok_or(FabricError::QpNotFound(dst_node_id, dst_qpn))?;

    // Touch the destination-side connection state in its NIC cache.
    dst_node
        .cache()
        .lock()
        .access(qp_state_key(dst_node_id.0, dst_qpn.0));

    match wr.op {
        SendOp::Send { local } => {
            let (src_mr, src_off) = resolve_local(node, local)?;
            let is_ud = !qp.transport().connected();
            if is_ud
                && fabric.config.ud_drop_probability > 0.0
                && rng.gen::<f64>() < fabric.config.ud_drop_probability
            {
                node.stats().bump(&node.stats().ud_drops);
                return Ok(local.len); // silently lost on the wire
            }
            let Some(recv) = dst_qp.pop_recv() else {
                if is_ud {
                    // UD: no buffer means the datagram is dropped, sender
                    // still completes successfully.
                    node.stats().bump(&node.stats().ud_drops);
                    return Ok(local.len);
                }
                return Err(FabricError::NoReceiveBuffer);
            };
            let grh = if is_ud { GRH_BYTES } else { 0 };
            let need = local.len + grh;
            if recv.local.len < need {
                deliver_recv_error(&dst_node, &dst_qp, &recv);
                if is_ud {
                    node.stats().bump(&node.stats().ud_drops);
                    return Ok(local.len);
                }
                return Err(FabricError::ReceiveBufferTooSmall {
                    have: recv.local.len,
                    need,
                });
            }
            let dst_mr = dst_node.mrs().lookup_lkey(recv.local.lkey)?;
            let off = dst_mr.translate(recv.local.addr, need)?;
            if grh > 0 {
                // Zero a synthetic GRH; real NICs deposit routing headers.
                dst_mr.write(off, &[0u8; GRH_BYTES])?;
            }
            src_mr.dma_to(src_off, &dst_mr, off + grh, local.len)?;
            dst_qp.recv_cq().push(Completion {
                wr_id: recv.wr_id,
                status: CqStatus::Success,
                opcode: CqOpcode::Recv,
                byte_len: need,
                imm: None,
                src: if is_ud {
                    Some((node.id(), qp.qpn()))
                } else {
                    None
                },
                qpn: dst_qpn,
            });
            node.stats().bump(&node.stats().sends);
            Ok(local.len)
        }
        SendOp::Write { local, remote } => {
            let (src_mr, src_off) = resolve_local(node, local)?;
            let dst_mr = dst_node
                .mrs()
                .lookup_rkey(remote.rkey, Access::REMOTE_WRITE)?;
            let off = dst_mr.translate(remote.addr, local.len)?;
            src_mr.dma_to(src_off, &dst_mr, off, local.len)?;
            node.stats().bump(&node.stats().writes);
            Ok(local.len)
        }
        SendOp::WriteImm { local, remote, imm } => {
            let (src_mr, src_off) = resolve_local(node, local)?;
            let dst_mr = dst_node
                .mrs()
                .lookup_rkey(remote.rkey, Access::REMOTE_WRITE)?;
            let off = dst_mr.translate(remote.addr, local.len)?;
            src_mr.dma_to(src_off, &dst_mr, off, local.len)?;
            // Consume one posted receive to deliver the immediate.
            let recv = dst_qp.pop_recv().ok_or(FabricError::NoReceiveBuffer)?;
            dst_qp.recv_cq().push(Completion {
                wr_id: recv.wr_id,
                status: CqStatus::Success,
                opcode: CqOpcode::RecvImm,
                byte_len: local.len,
                imm: Some(imm),
                src: None,
                qpn: dst_qpn,
            });
            node.stats().bump(&node.stats().writes);
            Ok(local.len)
        }
        SendOp::Read { local, remote } => {
            let src_mr = dst_node
                .mrs()
                .lookup_rkey(remote.rkey, Access::REMOTE_READ)?;
            let src_off = src_mr.translate(remote.addr, local.len)?;
            let (loc_mr, loc_off) = resolve_local(node, local)?;
            src_mr.dma_to(src_off, &loc_mr, loc_off, local.len)?;
            node.stats().bump(&node.stats().reads);
            Ok(local.len)
        }
        SendOp::FetchAdd { local, remote, add } => {
            let dst_mr = dst_node
                .mrs()
                .lookup_rkey(remote.rkey, Access::REMOTE_ATOMIC)?;
            let off = dst_mr.translate(remote.addr, 8)?;
            let old = dst_mr.fetch_add_u64(off, add)?;
            write_local(node, local, &old.to_le_bytes())?;
            node.stats().bump(&node.stats().atomics);
            Ok(8)
        }
        SendOp::CmpSwap {
            local,
            remote,
            expect,
            swap,
        } => {
            let dst_mr = dst_node
                .mrs()
                .lookup_rkey(remote.rkey, Access::REMOTE_ATOMIC)?;
            let off = dst_mr.translate(remote.addr, 8)?;
            let old = dst_mr.cmp_swap_u64(off, expect, swap)?;
            write_local(node, local, &old.to_le_bytes())?;
            node.stats().bump(&node.stats().atomics);
            Ok(8)
        }
    }
}

fn deliver_recv_error(dst_node: &Node, dst_qp: &crate::qp::Qp, recv: &RecvWr) {
    let _ = dst_node;
    dst_qp.recv_cq().push(Completion {
        wr_id: recv.wr_id,
        status: CqStatus::LocalProtectionError,
        opcode: CqOpcode::Recv,
        byte_len: 0,
        imm: None,
        src: None,
        qpn: dst_qp.qpn(),
    });
}

/// Resolve a local SGE to its region and buffer offset (bounds-checked),
/// without copying anything.
fn resolve_local(
    node: &Node,
    sge: Sge,
) -> Result<(std::sync::Arc<crate::mr::MemoryRegion>, usize)> {
    let mr = node.mrs().lookup_lkey(sge.lkey)?;
    let off = mr.translate(sge.addr, sge.len)?;
    Ok((mr, off))
}

fn write_local(node: &Node, sge: Sge, data: &[u8]) -> Result<()> {
    let mr = node.mrs().lookup_lkey(sge.lkey)?;
    let len = data.len().min(sge.len);
    let off = mr.translate(sge.addr, len)?;
    mr.write(off, &data[..len])
}
