//! Queue pairs.
//!
//! A [`Qp`] validates posted work against its transport's capabilities
//! (paper Table 1) and its connection state, then hands send-side work to
//! the node's NIC engine. Receive-side buffers are queued locally and
//! consumed by inbound two-sided traffic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::cq::CompletionQueue;
use crate::nic::NicCmd;
use crate::types::{FabricError, NodeId, QpNum, QpState, Result, Transport};
use crate::verbs::{RecvWr, SendWr};

/// A queue pair: a send queue / receive queue pair bound to two CQs.
///
/// The CQ bindings sit behind a mutex so a pooled QP can be *rebound* to
/// its next lessee's CQs on reuse (`crates/fabric/src/qpool.rs`); the
/// `epoch` counter is stamped into every posted work request and bumped
/// by [`Qp::reset`], so an engine lane silently drops work posted in a
/// previous lease instead of executing it against the new connection.
#[derive(Debug)]
pub struct Qp {
    node: NodeId,
    qpn: QpNum,
    transport: Transport,
    state: Mutex<QpState>,
    remote: Mutex<Option<(NodeId, QpNum)>>,
    send_cq: Mutex<Arc<CompletionQueue>>,
    recv_cq: Mutex<Arc<CompletionQueue>>,
    recv_queue: Mutex<VecDeque<RecvWr>>,
    epoch: AtomicU64,
    engine: Sender<NicCmd>,
}

impl Qp {
    pub(crate) fn new(
        node: NodeId,
        qpn: QpNum,
        transport: Transport,
        send_cq: Arc<CompletionQueue>,
        recv_cq: Arc<CompletionQueue>,
        engine: Sender<NicCmd>,
    ) -> Arc<Qp> {
        Arc::new(Qp {
            node,
            qpn,
            transport,
            state: Mutex::new(QpState::Init),
            remote: Mutex::new(None),
            send_cq: Mutex::new(send_cq),
            recv_cq: Mutex::new(recv_cq),
            recv_queue: Mutex::new(VecDeque::new()),
            epoch: AtomicU64::new(0),
            engine,
        })
    }

    /// Owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue pair number.
    pub fn qpn(&self) -> QpNum {
        self.qpn
    }

    /// Transport service type.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        *self.state.lock()
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<(NodeId, QpNum)> {
        *self.remote.lock()
    }

    /// Send-side completion queue (current binding).
    pub fn send_cq(&self) -> Arc<CompletionQueue> {
        Arc::clone(&self.send_cq.lock())
    }

    /// Receive-side completion queue (current binding).
    pub fn recv_cq(&self) -> Arc<CompletionQueue> {
        Arc::clone(&self.recv_cq.lock())
    }

    /// The QP's lease epoch. Stamped into posted work; bumped by
    /// [`Qp::reset`] so stale work from a previous lease is dropped by
    /// the engine instead of executing against the new connection.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Post a send-side work request.
    ///
    /// Validates state, verb support, MTU, and addressing before handing
    /// the request to the NIC engine. Local/remote memory validation
    /// happens asynchronously in the engine and is reported via the CQ.
    pub fn post_send(&self, wr: SendWr) -> Result<()> {
        let state = *self.state.lock();
        if state != QpState::Rts {
            return Err(FabricError::InvalidState(state));
        }
        if !wr.op.supported_on(self.transport) {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: wr.op.name(),
            });
        }
        let len = wr.op.byte_len();
        if len > self.transport.max_msg_size() {
            return Err(FabricError::PayloadTooLarge {
                len,
                max: self.transport.max_msg_size(),
            });
        }
        if self.transport.connected() {
            if wr.dst.is_some() {
                return Err(FabricError::MissingDestination); // dst must come from the connection
            }
            if self.remote.lock().is_none() {
                return Err(FabricError::NotConnected);
            }
        } else if wr.dst.is_none() {
            return Err(FabricError::MissingDestination);
        }
        self.engine
            .send(NicCmd::Post {
                src_qpn: self.qpn,
                epoch: self.epoch.load(Ordering::Acquire),
                wr,
            })
            .map_err(|_| FabricError::Shutdown)
    }

    /// Post a chain of linked send work requests with a single doorbell
    /// (the verbs `ibv_post_send` list form; Flock's leader uses this to
    /// submit the batch's one-sided operations, paper §6).
    ///
    /// Validation is all-or-nothing: if any request in the chain fails
    /// validation, nothing is posted.
    pub fn post_send_many(&self, wrs: &[SendWr]) -> Result<()> {
        let state = *self.state.lock();
        if state != QpState::Rts {
            return Err(FabricError::InvalidState(state));
        }
        for wr in wrs {
            if !wr.op.supported_on(self.transport) {
                return Err(FabricError::UnsupportedVerb {
                    transport: self.transport,
                    verb: wr.op.name(),
                });
            }
            let len = wr.op.byte_len();
            if len > self.transport.max_msg_size() {
                return Err(FabricError::PayloadTooLarge {
                    len,
                    max: self.transport.max_msg_size(),
                });
            }
            if self.transport.connected() {
                if wr.dst.is_some() {
                    return Err(FabricError::MissingDestination);
                }
                if self.remote.lock().is_none() {
                    return Err(FabricError::NotConnected);
                }
            } else if wr.dst.is_none() {
                return Err(FabricError::MissingDestination);
            }
        }
        let epoch = self.epoch.load(Ordering::Acquire);
        for wr in wrs {
            self.engine
                .send(NicCmd::Post {
                    src_qpn: self.qpn,
                    epoch,
                    wr: *wr,
                })
                .map_err(|_| FabricError::Shutdown)?;
        }
        Ok(())
    }

    /// Post a receive buffer. Legal in any non-error state.
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        let state = *self.state.lock();
        if state == QpState::Error {
            return Err(FabricError::InvalidState(state));
        }
        self.recv_queue.lock().push_back(wr);
        Ok(())
    }

    /// Number of posted, unconsumed receive buffers.
    pub fn posted_recvs(&self) -> usize {
        self.recv_queue.lock().len()
    }

    pub(crate) fn pop_recv(&self) -> Option<RecvWr> {
        self.recv_queue.lock().pop_front()
    }

    pub(crate) fn set_connected(&self, peer: (NodeId, QpNum)) -> Result<()> {
        if !self.transport.connected() {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: "connect",
            });
        }
        let mut state = self.state.lock();
        if *state != QpState::Init {
            return Err(FabricError::InvalidState(*state));
        }
        *self.remote.lock() = Some(peer);
        *state = QpState::Rts;
        Ok(())
    }

    /// Transition an unconnected (UD) QP to ready-to-send.
    pub fn ready(&self) -> Result<()> {
        if self.transport.connected() {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: "ready (use connect)",
            });
        }
        let mut state = self.state.lock();
        if *state != QpState::Init {
            return Err(FabricError::InvalidState(*state));
        }
        *state = QpState::Rts;
        Ok(())
    }

    /// Force the QP into the error state (flushing semantics are handled by
    /// the engine as it encounters the state).
    pub fn set_error(&self) {
        *self.state.lock() = QpState::Error;
    }

    /// Reset the QP for reuse (verbs modify-to-RESET): back to `Init`,
    /// peer and posted receives cleared, lease epoch bumped so any work
    /// still queued in the engine from the previous lease is silently
    /// dropped. The QP number and lane pinning are preserved — that is
    /// the whole point of pooling (no NIC state reallocation).
    pub fn reset(&self) {
        let mut state = self.state.lock();
        // Bump under the state lock, before the state change is visible:
        // a post_send racing with reset either sees Rts and stamps the
        // old epoch (its work is dropped by the engine's epoch check) or
        // sees Init and is rejected outright.
        self.epoch.fetch_add(1, Ordering::Release);
        *self.remote.lock() = None;
        self.recv_queue.lock().clear();
        *state = QpState::Init;
    }

    /// Rebind the QP's completion queues to a new lessee's CQs. Only
    /// meaningful in the `Init` state (freshly created or reset); the
    /// pool calls this on lease before the QP is connected.
    pub fn rebind_cqs(&self, send_cq: &Arc<CompletionQueue>, recv_cq: &Arc<CompletionQueue>) {
        *self.send_cq.lock() = Arc::clone(send_cq);
        *self.recv_cq.lock() = Arc::clone(recv_cq);
    }
}
