//! Queue pairs.
//!
//! A [`Qp`] validates posted work against its transport's capabilities
//! (paper Table 1) and its connection state, then hands send-side work to
//! the node's NIC engine. Receive-side buffers are queued locally and
//! consumed by inbound two-sided traffic.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::cq::CompletionQueue;
use crate::nic::NicCmd;
use crate::types::{FabricError, NodeId, QpNum, QpState, Result, Transport};
use crate::verbs::{RecvWr, SendWr};

/// A queue pair: a send queue / receive queue pair bound to two CQs.
#[derive(Debug)]
pub struct Qp {
    node: NodeId,
    qpn: QpNum,
    transport: Transport,
    state: Mutex<QpState>,
    remote: Mutex<Option<(NodeId, QpNum)>>,
    send_cq: Arc<CompletionQueue>,
    recv_cq: Arc<CompletionQueue>,
    recv_queue: Mutex<VecDeque<RecvWr>>,
    engine: Sender<NicCmd>,
}

impl Qp {
    pub(crate) fn new(
        node: NodeId,
        qpn: QpNum,
        transport: Transport,
        send_cq: Arc<CompletionQueue>,
        recv_cq: Arc<CompletionQueue>,
        engine: Sender<NicCmd>,
    ) -> Arc<Qp> {
        Arc::new(Qp {
            node,
            qpn,
            transport,
            state: Mutex::new(QpState::Init),
            remote: Mutex::new(None),
            send_cq,
            recv_cq,
            recv_queue: Mutex::new(VecDeque::new()),
            engine,
        })
    }

    /// Owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue pair number.
    pub fn qpn(&self) -> QpNum {
        self.qpn
    }

    /// Transport service type.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        *self.state.lock()
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<(NodeId, QpNum)> {
        *self.remote.lock()
    }

    /// Send-side completion queue.
    pub fn send_cq(&self) -> &Arc<CompletionQueue> {
        &self.send_cq
    }

    /// Receive-side completion queue.
    pub fn recv_cq(&self) -> &Arc<CompletionQueue> {
        &self.recv_cq
    }

    /// Post a send-side work request.
    ///
    /// Validates state, verb support, MTU, and addressing before handing
    /// the request to the NIC engine. Local/remote memory validation
    /// happens asynchronously in the engine and is reported via the CQ.
    pub fn post_send(&self, wr: SendWr) -> Result<()> {
        let state = *self.state.lock();
        if state != QpState::Rts {
            return Err(FabricError::InvalidState(state));
        }
        if !wr.op.supported_on(self.transport) {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: wr.op.name(),
            });
        }
        let len = wr.op.byte_len();
        if len > self.transport.max_msg_size() {
            return Err(FabricError::PayloadTooLarge {
                len,
                max: self.transport.max_msg_size(),
            });
        }
        if self.transport.connected() {
            if wr.dst.is_some() {
                return Err(FabricError::MissingDestination); // dst must come from the connection
            }
            if self.remote.lock().is_none() {
                return Err(FabricError::NotConnected);
            }
        } else if wr.dst.is_none() {
            return Err(FabricError::MissingDestination);
        }
        self.engine
            .send(NicCmd::Post {
                src_qpn: self.qpn,
                wr,
            })
            .map_err(|_| FabricError::Shutdown)
    }

    /// Post a chain of linked send work requests with a single doorbell
    /// (the verbs `ibv_post_send` list form; Flock's leader uses this to
    /// submit the batch's one-sided operations, paper §6).
    ///
    /// Validation is all-or-nothing: if any request in the chain fails
    /// validation, nothing is posted.
    pub fn post_send_many(&self, wrs: &[SendWr]) -> Result<()> {
        let state = *self.state.lock();
        if state != QpState::Rts {
            return Err(FabricError::InvalidState(state));
        }
        for wr in wrs {
            if !wr.op.supported_on(self.transport) {
                return Err(FabricError::UnsupportedVerb {
                    transport: self.transport,
                    verb: wr.op.name(),
                });
            }
            let len = wr.op.byte_len();
            if len > self.transport.max_msg_size() {
                return Err(FabricError::PayloadTooLarge {
                    len,
                    max: self.transport.max_msg_size(),
                });
            }
            if self.transport.connected() {
                if wr.dst.is_some() {
                    return Err(FabricError::MissingDestination);
                }
                if self.remote.lock().is_none() {
                    return Err(FabricError::NotConnected);
                }
            } else if wr.dst.is_none() {
                return Err(FabricError::MissingDestination);
            }
        }
        for wr in wrs {
            self.engine
                .send(NicCmd::Post {
                    src_qpn: self.qpn,
                    wr: *wr,
                })
                .map_err(|_| FabricError::Shutdown)?;
        }
        Ok(())
    }

    /// Post a receive buffer. Legal in any non-error state.
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        let state = *self.state.lock();
        if state == QpState::Error {
            return Err(FabricError::InvalidState(state));
        }
        self.recv_queue.lock().push_back(wr);
        Ok(())
    }

    /// Number of posted, unconsumed receive buffers.
    pub fn posted_recvs(&self) -> usize {
        self.recv_queue.lock().len()
    }

    pub(crate) fn pop_recv(&self) -> Option<RecvWr> {
        self.recv_queue.lock().pop_front()
    }

    pub(crate) fn set_connected(&self, peer: (NodeId, QpNum)) -> Result<()> {
        if !self.transport.connected() {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: "connect",
            });
        }
        let mut state = self.state.lock();
        if *state != QpState::Init {
            return Err(FabricError::InvalidState(*state));
        }
        *self.remote.lock() = Some(peer);
        *state = QpState::Rts;
        Ok(())
    }

    /// Transition an unconnected (UD) QP to ready-to-send.
    pub fn ready(&self) -> Result<()> {
        if self.transport.connected() {
            return Err(FabricError::UnsupportedVerb {
                transport: self.transport,
                verb: "ready (use connect)",
            });
        }
        let mut state = self.state.lock();
        if *state != QpState::Init {
            return Err(FabricError::InvalidState(*state));
        }
        *state = QpState::Rts;
        Ok(())
    }

    /// Force the QP into the error state (flushing semantics are handled by
    /// the engine as it encounters the state).
    pub fn set_error(&self) {
        *self.state.lock() = QpState::Error;
    }
}
