//! The MR registration cache.
//!
//! `ibv_reg_mr` pins pages and installs MTT/MPT entries — a control-
//! plane cost that scales with region size and dominates connection
//! setup for ring-buffer-sized registrations (Swift, PAPERS.md). The
//! cache parks deregistration candidates instead of tearing them down,
//! keyed by *layout* (`(len, access bits)`): a connection being built
//! reuses a parked region of identical layout and pays only a buffer
//! zeroing ([`CostModel::memset_time`](crate::CostModel)) instead of the
//! full registration penalty
//! ([`CostModel::reg_mr_time`](crate::CostModel)).
//!
//! Zeroing on reuse is not an optimization detail — it is required for
//! correctness: Flock rings validate slot canaries, and a recycled
//! buffer still holds the previous connection's canary sequence.
//!
//! Bookkeeping rides the existing [`ConnCache`] LRU infrastructure: each
//! parked region is an entry keyed by its lkey. Acquire records exactly
//! one hit (warm reuse) or miss (cold registration) through
//! [`ConnCache::access`]; parking uses the stats-neutral
//! [`ConnCache::insert_quiet`]; capacity is enforced with
//! [`ConnCache::pop_lru`], which names the region to actually
//! deregister.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cache::ConnCache;
use crate::mr::{Access, MemoryRegion};

/// Configuration for a node's MR registration cache.
#[derive(Debug, Clone)]
pub struct MrCacheConfig {
    /// Master switch. Disabled (the default), every acquire registers
    /// cold and every release deregisters.
    pub enabled: bool,
    /// Maximum parked regions retained across all layouts.
    pub capacity: usize,
}

impl Default for MrCacheConfig {
    fn default() -> Self {
        MrCacheConfig {
            enabled: false,
            capacity: 4096,
        }
    }
}

/// Layout key: regions are interchangeable iff length and rights match.
type Layout = (usize, u8);

/// A layout-keyed cache of parked (registered but unleased) regions.
#[derive(Debug)]
pub struct MrCache {
    cfg: MrCacheConfig,
    /// Parked regions per layout, LIFO (most recently parked reused
    /// first — its pages are warmest).
    layouts: HashMap<Layout, Vec<Arc<MemoryRegion>>>,
    /// Parked regions by lkey, so [`ConnCache::pop_lru`] victims can be
    /// resolved back to a region.
    by_key: HashMap<u64, Arc<MemoryRegion>>,
    /// LRU order + hit/miss statistics over parked regions. Sized with
    /// slack above `cfg.capacity` (capacity is enforced here, via
    /// `pop_lru`) so the inner cache never silently evicts on its own.
    index: ConnCache,
}

impl MrCache {
    /// Build a cache from its configuration.
    pub fn new(cfg: MrCacheConfig) -> MrCache {
        let slack = cfg.capacity.max(1) + 2;
        MrCache {
            cfg,
            layouts: HashMap::new(),
            by_key: HashMap::new(),
            index: ConnCache::new(slack),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &MrCacheConfig {
        &self.cfg
    }

    /// Warm acquires so far (reused a parked region).
    pub fn hits(&self) -> u64 {
        self.index.hits()
    }

    /// Cold acquires so far (fresh registration).
    pub fn misses(&self) -> u64 {
        self.index.misses()
    }

    /// Parked regions deregistered to enforce capacity.
    pub fn evictions(&self) -> u64 {
        self.index.evictions()
    }

    /// Number of parked regions.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no regions are parked.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Try to reuse a parked region of layout `(len, access)`. On
    /// success the region leaves the cache and a hit is recorded; on
    /// `None` a miss is recorded (the caller registers cold).
    pub(crate) fn take(&mut self, len: usize, access: Access) -> Option<Arc<MemoryRegion>> {
        if !self.cfg.enabled {
            return None;
        }
        let layout: Layout = (len, access.bits());
        let mr = self.layouts.get_mut(&layout).and_then(|v| v.pop());
        match mr {
            Some(mr) => {
                let key = mr.lkey().0 as u64;
                self.by_key.remove(&key);
                self.index.access(key); // hit: parked at release
                self.index.invalidate(key); // leased out, leaves LRU
                Some(mr)
            }
            None => {
                // Record the miss against a key that is guaranteed
                // absent, then drop it again: the cold region being
                // registered by the caller is leased, not parked.
                let probe = u64::MAX ^ (len as u64);
                self.index.access(probe);
                self.index.invalidate(probe);
                None
            }
        }
    }

    /// Park a region for reuse. Returns the regions evicted to enforce
    /// capacity — the caller owns their teardown (deregistration and
    /// cost accounting). When the cache is disabled the offered region
    /// itself comes back as the single "eviction".
    pub(crate) fn put(&mut self, mr: Arc<MemoryRegion>) -> Vec<Arc<MemoryRegion>> {
        if !self.cfg.enabled {
            return vec![mr];
        }
        let key = mr.lkey().0 as u64;
        let layout: Layout = (mr.len(), mr.access().bits());
        self.layouts.entry(layout).or_default().push(Arc::clone(&mr));
        self.by_key.insert(key, mr);
        self.index.insert_quiet(key);
        let mut evicted = Vec::new();
        while self.by_key.len() > self.cfg.capacity {
            let Some(victim_key) = self.index.pop_lru() else {
                break;
            };
            if let Some(victim) = self.by_key.remove(&victim_key) {
                let vl: Layout = (victim.len(), victim.access().bits());
                if let Some(list) = self.layouts.get_mut(&vl) {
                    if let Some(pos) = list.iter().position(|m| m.lkey() == victim.lkey()) {
                        list.swap_remove(pos);
                    }
                }
                evicted.push(victim);
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::MrTable;

    fn cache(capacity: usize) -> MrCache {
        MrCache::new(MrCacheConfig {
            enabled: true,
            capacity,
        })
    }

    #[test]
    fn cold_then_warm_roundtrip() {
        let t = MrTable::new();
        let mut c = cache(8);
        assert!(c.take(1024, Access::REMOTE_WRITE).is_none());
        assert_eq!(c.misses(), 1);
        let mr = t.register(1024, Access::REMOTE_WRITE);
        assert!(c.put(mr).is_empty());
        let back = c.take(1024, Access::REMOTE_WRITE).expect("warm");
        assert_eq!(back.len(), 1024);
        assert_eq!(c.hits(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn layouts_do_not_cross() {
        let t = MrTable::new();
        let mut c = cache(8);
        c.put(t.register(1024, Access::REMOTE_WRITE));
        // Different length and different rights both miss.
        assert!(c.take(2048, Access::REMOTE_WRITE).is_none());
        assert!(c.take(1024, Access::LOCAL).is_none());
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_evicts_lru_region() {
        let t = MrTable::new();
        let mut c = cache(2);
        let a = t.register(64, Access::LOCAL);
        let b = t.register(64, Access::LOCAL);
        let d = t.register(64, Access::LOCAL);
        let a_lkey = a.lkey();
        assert!(c.put(a).is_empty());
        assert!(c.put(b).is_empty());
        let evicted = c.put(d);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].lkey(), a_lkey, "oldest parked region goes");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn disabled_cache_returns_region_to_caller() {
        let t = MrTable::new();
        let mut c = MrCache::new(MrCacheConfig::default());
        assert!(c.take(64, Access::LOCAL).is_none());
        let mr = t.register(64, Access::LOCAL);
        let back = c.put(mr);
        assert_eq!(back.len(), 1);
        assert!(c.is_empty());
        // Disabled: stats stay silent.
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn lifo_reuse_prefers_most_recently_parked() {
        let t = MrTable::new();
        let mut c = cache(8);
        let a = t.register(64, Access::LOCAL);
        let b = t.register(64, Access::LOCAL);
        let b_lkey = b.lkey();
        c.put(a);
        c.put(b);
        assert_eq!(c.take(64, Access::LOCAL).unwrap().lkey(), b_lkey);
    }
}
