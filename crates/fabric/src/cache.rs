//! The RNIC connection-state cache model.
//!
//! Real RNICs keep queue-pair metadata, congestion-control state and memory
//! translation entries in a small on-NIC SRAM (paper Figure 1). When the
//! working set of active connections exceeds the cache, every verb pays a
//! PCIe round trip to fetch state from host memory — the root cause of the
//! throughput collapse in Figure 2(a) and the reason Flock caps active QPs
//! at `MAX_AQP`.
//!
//! [`ConnCache`] is a strict-LRU set of opaque `u64` keys (one per cached
//! connection/translation entry) with hit/miss statistics. The threaded
//! fabric uses it for observability; the DES models use the hit/miss result
//! to charge [`CostModel::nic_service`](crate::CostModel::nic_service).

use std::collections::HashMap;

/// Replacement policy for [`ConnCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Strict least-recently-used (the default; worst case under cyclic
    /// access — every access misses once the working set exceeds the
    /// capacity).
    Lru,
    /// Pseudo-random victim selection (models the set-associative,
    /// non-ideal replacement of real RNIC caches: the hit ratio degrades
    /// gracefully to roughly `capacity / working_set`).
    Random,
}

/// Strict-LRU cache over opaque `u64` keys with hit/miss accounting.
///
/// Implemented as an intrusive doubly-linked list over a slab, giving O(1)
/// touch/insert/evict without per-op allocation.
#[derive(Debug)]
pub struct ConnCache {
    capacity: usize,
    policy: Eviction,
    prng: u64,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl ConnCache {
    /// Create an LRU cache holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, Eviction::Lru, 0x9E37_79B9)
    }

    /// Create a cache with an explicit replacement policy.
    pub fn with_policy(capacity: usize, policy: Eviction, seed: u64) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        ConnCache {
            capacity,
            policy,
            prng: seed | 1,
            map: HashMap::with_capacity(capacity * 2),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Access `key`: returns `true` on a hit. On a miss the key is inserted,
    /// evicting the least recently used entry if full.
    pub fn access(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.move_to_front(idx);
            return true;
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            match self.policy {
                Eviction::Lru => self.evict_lru(),
                Eviction::Random => self.evict_random(),
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        false
    }

    /// Whether `key` is currently cached (does not update recency or stats).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert or touch `key` *without* recording a hit or miss (and
    /// without evicting — the caller enforces capacity, e.g. via
    /// [`ConnCache::pop_lru`]). Used by the MR registration cache, which
    /// counts hits/misses only on acquire, not when regions are parked.
    pub fn insert_quiet(&mut self, key: u64) {
        if let Some(&idx) = self.map.get(&key) {
            self.move_to_front(idx);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Remove and return the least-recently-used key, if any. Lets a
    /// caller that owns the values (e.g. the MR registration cache)
    /// learn *which* entry to tear down when enforcing its own capacity.
    pub fn pop_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slots[idx].key;
        self.map.remove(&key);
        self.unlink(idx);
        self.free.push(idx);
        self.evictions += 1;
        Some(key)
    }

    /// Remove `key` if present (e.g., QP destroyed).
    pub fn invalidate(&mut self, key: u64) {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio in `[0, 1]`; 0 if no accesses yet.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    fn evict_random(&mut self) {
        // xorshift64* victim pick over live slots.
        self.prng ^= self.prng << 13;
        self.prng ^= self.prng >> 7;
        self.prng ^= self.prng << 17;
        let mut idx = (self.prng as usize) % self.slots.len();
        // Walk to a live slot (free slots are rare and transient).
        for _ in 0..self.slots.len() {
            if !self.free.contains(&idx) {
                break;
            }
            idx = (idx + 1) % self.slots.len();
        }
        let key = self.slots[idx].key;
        if self.map.remove(&key).is_some() {
            self.unlink(idx);
            self.free.push(idx);
            self.evictions += 1;
        } else {
            // Stale slot: fall back to LRU for safety.
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let lru = self.tail;
        debug_assert_ne!(lru, NIL);
        let key = self.slots[lru].key;
        self.map.remove(&key);
        self.unlink(lru);
        self.free.push(lru);
        self.evictions += 1;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Slot { prev, next, .. } = self.slots[idx];
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }
}

/// Build the cache key for a queue pair's connection state.
pub fn qp_state_key(node: u32, qpn: u32) -> u64 {
    ((node as u64) << 32) | qpn as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = ConnCache::new(4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ConnCache::new(3);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // 1 becomes MRU; LRU order now 2, 3, 1
        c.access(4); // evicts 2
        assert!(!c.contains(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(c.contains(4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = ConnCache::new(256);
        for round in 0..10 {
            for k in 0..256u64 {
                let hit = c.access(k);
                assert_eq!(hit, round > 0, "round={round} k={k}");
            }
        }
        assert_eq!(c.misses(), 256);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // Cyclic access over 2x capacity with strict LRU: every access
        // misses — the Figure 2(a) cliff in miniature.
        let mut c = ConnCache::new(128);
        for _ in 0..4 {
            for k in 0..256u64 {
                c.access(k);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1024);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = ConnCache::new(2);
        c.access(7);
        c.invalidate(7);
        assert!(!c.contains(7));
        assert_eq!(c.len(), 0);
        // Slot is recycled.
        c.access(8);
        c.access(9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn len_is_bounded_by_capacity() {
        let mut c = ConnCache::new(10);
        for k in 0..1000 {
            c.access(k);
            assert!(c.len() <= 10);
        }
    }

    #[test]
    fn insert_quiet_and_pop_lru() {
        let mut c = ConnCache::new(8);
        c.insert_quiet(1);
        c.insert_quiet(2);
        c.insert_quiet(3);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.len(), 3);
        c.insert_quiet(1); // touch: 1 becomes MRU
        assert_eq!(c.pop_lru(), Some(2));
        assert_eq!(c.pop_lru(), Some(3));
        assert_eq!(c.pop_lru(), Some(1));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
        // Quiet entries still produce hits for real accesses.
        c.insert_quiet(9);
        assert!(c.access(9));
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn qp_state_key_is_injective_per_field() {
        assert_ne!(qp_state_key(1, 2), qp_state_key(2, 1));
        assert_ne!(qp_state_key(0, 1), qp_state_key(1, 0));
    }

    #[test]
    fn random_eviction_degrades_gracefully() {
        // Cyclic access over 2x capacity: strict LRU gets 0% hits, the
        // random policy lands near capacity/working_set.
        let mut lru = ConnCache::with_policy(128, Eviction::Lru, 1);
        let mut rnd = ConnCache::with_policy(128, Eviction::Random, 1);
        for _ in 0..16 {
            for k in 0..256u64 {
                lru.access(k);
                rnd.access(k);
            }
        }
        assert_eq!(lru.hits(), 0);
        let ratio = rnd.hit_ratio();
        assert!(ratio > 0.05 && ratio < 0.6, "ratio={ratio}");
        assert!(rnd.len() <= 128);
    }

    #[test]
    fn random_eviction_within_capacity_always_hits() {
        let mut c = ConnCache::with_policy(64, Eviction::Random, 3);
        for round in 0..5 {
            for k in 0..64u64 {
                assert_eq!(c.access(k), round > 0);
            }
        }
    }

    #[test]
    fn random_eviction_is_seed_deterministic() {
        let run = |seed| {
            let mut c = ConnCache::with_policy(32, Eviction::Random, seed);
            for k in 0..1000u64 {
                c.access(k % 64);
            }
            c.hits()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = ConnCache::new(4);
        c.access(1);
        c.access(1);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
        assert!(c.contains(1));
    }
}
