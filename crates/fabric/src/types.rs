//! Identifier newtypes and the fabric error type.

use std::fmt;

/// Identifies a node (machine) attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A queue pair number, unique within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

/// A caller-chosen work-request identifier, echoed in completions
/// (`wr_id` in the verbs API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WrId(pub u64);

/// Local protection key naming a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lkey(pub u32);

/// Remote access key naming a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rkey(pub u32);

/// RDMA transport service types (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Reliable connection: all verbs, 2 GB MTU, hardware retransmission.
    Rc,
    /// Unreliable connection: send/recv and write only, no ACKs.
    Uc,
    /// Unreliable datagram: send/recv only, 4 KB MTU, one-to-many.
    Ud,
}

impl Transport {
    /// Maximum message size for this transport (paper Table 1).
    pub const fn max_msg_size(self) -> usize {
        match self {
            Transport::Rc | Transport::Uc => 2 << 30, // 2 GB
            Transport::Ud => 4 << 10,                 // 4 KB
        }
    }

    /// Whether one-sided reads are supported.
    pub const fn supports_read(self) -> bool {
        matches!(self, Transport::Rc)
    }

    /// Whether one-sided writes are supported.
    pub const fn supports_write(self) -> bool {
        matches!(self, Transport::Rc | Transport::Uc)
    }

    /// Whether remote atomics are supported.
    pub const fn supports_atomic(self) -> bool {
        matches!(self, Transport::Rc)
    }

    /// Whether two-sided send/recv is supported (all transports).
    pub const fn supports_send_recv(self) -> bool {
        true
    }

    /// Whether the hardware guarantees reliable, ordered delivery.
    pub const fn reliable(self) -> bool {
        matches!(self, Transport::Rc)
    }

    /// Whether this is a connected (one-to-one) transport.
    pub const fn connected(self) -> bool {
        matches!(self, Transport::Rc | Transport::Uc)
    }
}

/// Queue pair state machine, following the verbs model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created; only `post_recv` is legal.
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send (fully operational).
    Rts,
    /// Error: all posted and future work completes with a flush error.
    Error,
}

/// Errors surfaced by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The node is not registered with the fabric.
    NodeNotFound(NodeId),
    /// The queue pair does not exist on the target node.
    QpNotFound(NodeId, QpNum),
    /// The QP is in the wrong state for the requested operation.
    InvalidState(QpState),
    /// The transport does not support the requested verb.
    UnsupportedVerb {
        /// Transport of the posting QP.
        transport: Transport,
        /// Human-readable verb name.
        verb: &'static str,
    },
    /// Payload exceeds the transport MTU.
    PayloadTooLarge {
        /// Requested length in bytes.
        len: usize,
        /// Maximum allowed by the transport.
        max: usize,
    },
    /// Remote key does not name a registered region.
    BadRkey(Rkey),
    /// Local key does not name a registered region.
    BadLkey(Lkey),
    /// Address range falls outside the region, or the region lacks the
    /// required access rights.
    AccessViolation {
        /// Offending start address.
        addr: u64,
        /// Length of the access.
        len: usize,
    },
    /// Remote atomic target address is not 8-byte aligned.
    Misaligned(u64),
    /// A two-sided send arrived but the receiver had no posted buffer
    /// (receiver-not-ready).
    NoReceiveBuffer,
    /// The posted receive buffer is smaller than the inbound payload.
    ReceiveBufferTooSmall {
        /// Posted buffer capacity.
        have: usize,
        /// Inbound payload length.
        need: usize,
    },
    /// A connected QP has no remote peer established.
    NotConnected,
    /// UD send is missing destination addressing.
    MissingDestination,
    /// The fabric (NIC engine) has shut down.
    Shutdown,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::NodeNotFound(n) => write!(f, "node {n:?} not found"),
            FabricError::QpNotFound(n, q) => write!(f, "qp {q:?} not found on node {n:?}"),
            FabricError::InvalidState(s) => write!(f, "queue pair in invalid state {s:?}"),
            FabricError::UnsupportedVerb { transport, verb } => {
                write!(f, "{verb} not supported on {transport:?}")
            }
            FabricError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds transport max {max}")
            }
            FabricError::BadRkey(k) => write!(f, "invalid rkey {k:?}"),
            FabricError::BadLkey(k) => write!(f, "invalid lkey {k:?}"),
            FabricError::AccessViolation { addr, len } => {
                write!(f, "access violation at {addr:#x} len {len}")
            }
            FabricError::Misaligned(a) => write!(f, "atomic target {a:#x} not 8-byte aligned"),
            FabricError::NoReceiveBuffer => write!(f, "receiver not ready: no posted buffer"),
            FabricError::ReceiveBufferTooSmall { have, need } => {
                write!(
                    f,
                    "posted receive buffer too small: have {have}, need {need}"
                )
            }
            FabricError::NotConnected => write!(f, "queue pair is not connected"),
            FabricError::MissingDestination => write!(f, "UD send requires a destination"),
            FabricError::Shutdown => write!(f, "fabric has shut down"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Convenient result alias for fabric operations.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capability_matrix() {
        // Paper Table 1: RC supports everything; UC lacks read/atomic;
        // UD lacks all one-sided verbs and has a 4 KB MTU.
        assert!(Transport::Rc.supports_read());
        assert!(Transport::Rc.supports_write());
        assert!(Transport::Rc.supports_atomic());
        assert!(Transport::Rc.supports_send_recv());
        assert!(Transport::Rc.reliable());
        assert_eq!(Transport::Rc.max_msg_size(), 2 << 30);

        assert!(!Transport::Uc.supports_read());
        assert!(Transport::Uc.supports_write());
        assert!(!Transport::Uc.supports_atomic());
        assert!(Transport::Uc.supports_send_recv());
        assert!(!Transport::Uc.reliable());
        assert_eq!(Transport::Uc.max_msg_size(), 2 << 30);

        assert!(!Transport::Ud.supports_read());
        assert!(!Transport::Ud.supports_write());
        assert!(!Transport::Ud.supports_atomic());
        assert!(Transport::Ud.supports_send_recv());
        assert!(!Transport::Ud.reliable());
        assert_eq!(Transport::Ud.max_msg_size(), 4096);
    }

    #[test]
    fn connectedness() {
        assert!(Transport::Rc.connected());
        assert!(Transport::Uc.connected());
        assert!(!Transport::Ud.connected());
    }

    #[test]
    fn errors_display() {
        let e = FabricError::PayloadTooLarge {
            len: 9000,
            max: 4096,
        };
        assert!(e.to_string().contains("9000"));
        let e = FabricError::AccessViolation { addr: 0x10, len: 4 };
        assert!(e.to_string().contains("0x10"));
    }
}
