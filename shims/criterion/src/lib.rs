//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It provides the subset the bench suite uses —
//! `Criterion::default()` with the builder knobs, `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a minimal timed harness that prints
//! mean ns/iter per benchmark. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (shim: holds the timing knobs).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(ns) => println!("bench {name:<48} {ns:>12.1} ns/iter"),
            None => println!("bench {name:<48} (no measurement)"),
        }
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Measure `f`, calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: find how many iterations
        // fit in ~1/sample_size of the measurement budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let batch = ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)) as u64).max(1);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
            if Instant::now() > deadline {
                break;
            }
        }
        self.report = Some(total_ns / total_iters.max(1) as f64);
    }
}

/// Group benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_positive_mean() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
