//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `crossbeam` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Only the surface the workspace actually uses is
//! provided: `crossbeam::channel` with cloneable multi-producer
//! multi-consumer senders and receivers. Semantics match crossbeam for
//! that subset: `bounded(n)` blocks senders when full, endpoints are
//! `Clone + Send + Sync`, and disconnection is observed when all peers
//! of the other side are dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        recv_cv: Condvar,
        send_cv: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.send_cv.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.chan.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one is available or all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.recv_cv.wait(st).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.chan.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self.chan.recv_cv.wait_timeout(st, deadline - now).unwrap();
                st = g;
            }
        }

        /// Blocking iterator over received messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Create a bounded channel. A capacity of zero is treated as one
    /// (this shim does not implement rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn endpoints_are_clone_and_shared() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(7u8).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
