//! Offline stand-in for the `loom` crate: a bounded-exhaustive
//! interleaving model checker.
//!
//! The build environment has no network access, so `flock-core` uses this
//! shim as its `cfg(loom)` dependency. Like real loom, [`model`] runs a
//! closure many times, exploring thread interleavings systematically; the
//! `sync`, `thread`, `cell`, and `hint` modules mirror loom's API so code
//! written against the `flock_core::sync` facade compiles unchanged.
//!
//! ## How it explores
//!
//! Every controlled thread is divided into *steps* at schedule points
//! (each atomic operation, `yield_now`, `spin_loop`, spawn and join). A
//! controller thread grants exactly one thread permission to run each
//! step, so an execution is fully determined by the sequence of choices.
//! The controller enumerates those choice sequences depth-first,
//! replaying the common prefix each iteration, until the space is
//! exhausted. Exploration is bounded by the number of *preemptions* per
//! execution (switching away from a thread that could have continued),
//! default 2, overridable with `LOOM_MAX_PREEMPTIONS` — the same
//! context-bounding approach loom and CHESS use. Voluntary switches
//! (yield, block, finish) are never charged, so spin-wait protocols are
//! explored fully.
//!
//! ## What it can and cannot find
//!
//! The checker executes atomics with sequentially-consistent semantics,
//! so it falsifies *protocol* bugs: lost wakeups, broken handoffs,
//! deadlocks, double-frees that manifest as assertion failures, items
//! lost or duplicated under any bounded-preemption interleaving. It does
//! **not** model weak memory (a store published with `Relaxed` is still
//! seen in order), and it does not track raw-pointer aliasing — those
//! are covered by the Miri job and the `cargo audit-orderings` policy
//! (see DESIGN.md "Memory ordering and verification").

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be granted a step.
    Runnable,
    /// Voluntarily yielded; only runnable when no `Runnable` thread is.
    Yielded,
    /// Waiting for another thread to finish.
    BlockedJoin(usize),
    /// Closure returned (or unwound).
    Finished,
}

struct SchedState {
    threads: Vec<Status>,
    /// Fairness barriers: `yield_barrier[t]` holds the threads that must
    /// each be granted a step before `t` (which yielded) is eligible
    /// again. This is CHESS-style fair scheduling for spin loops: it
    /// both bounds the DFS tree (no "spin once more" branch can repeat
    /// forever while a runnable thread is starved) and preserves every
    /// distinguishable interleaving, because a re-read with no
    /// intervening step observes identical (SeqCst) state.
    yield_barrier: Vec<Vec<usize>>,
    /// Thread currently granted a step (`None` while the controller picks).
    active: Option<usize>,
    /// Set when a controlled thread panicked or a deadlock was found:
    /// all schedule points turn into panics so every thread unwinds.
    abort: bool,
    panic_msg: Option<String>,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                threads: Vec::new(),
                yield_barrier: Vec::new(),
                active: None,
                abort: false,
                panic_msg: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a new controlled thread, returning its tid.
    fn register(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(Status::Runnable);
        st.yield_barrier.push(Vec::new());
        st.threads.len() - 1
    }

    /// End the current step (if `tid` holds the grant) and wait to be
    /// granted the next one. `new_status` is published before pausing.
    fn pause(&self, tid: usize, new_status: Status) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid] = new_status;
        if new_status == Status::Yielded {
            st.yield_barrier[tid] = (0..st.threads.len())
                .filter(|&i| {
                    i != tid && matches!(st.threads[i], Status::Runnable | Status::Yielded)
                })
                .collect();
        }
        if st.active == Some(tid) {
            st.active = None;
        }
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                panic!("loom model aborted (failure on another interleaving path)");
            }
            if st.active == Some(tid) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Wait until granted the first step, without ending any step.
    /// Used at thread startup: the controller may have granted this
    /// thread before its OS thread even started running, and that grant
    /// must not be consumed by the arrival itself.
    fn arrive(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.abort {
                drop(st);
                panic!("loom model aborted (failure on another interleaving path)");
            }
            if st.active == Some(tid) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Mark `tid` finished and wake the controller.
    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid] = Status::Finished;
        if st.active == Some(tid) {
            st.active = None;
        }
        if let Some(msg) = panic_msg {
            st.abort = true;
            st.panic_msg.get_or_insert(msg);
        }
        self.cv.notify_all();
    }
}

/// One decision the controller made, with the alternatives left to try.
struct Choice {
    candidates: Vec<usize>,
    index: usize,
    /// Preemptions consumed on the path up to and including this choice.
    preemptions: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The schedule point every shim primitive funnels through. Outside a
/// [`model`] run this is a no-op, so `cfg(loom)` builds still execute
/// normally (e.g. the crate's regular unit tests).
fn schedule_point(yielding: bool) {
    let current = CURRENT.with(|c| c.borrow().clone());
    if let Some((sched, tid)) = current {
        let status = if yielding {
            Status::Yielded
        } else {
            Status::Runnable
        };
        sched.pause(tid, status);
    } else if yielding {
        std::thread::yield_now();
    }
}

/// Run `f` under every interleaving within the preemption bound.
///
/// Panics if any execution panics (assertion failure), deadlocks, or if
/// the exploration exceeds `LOOM_MAX_ITERATIONS` executions (default
/// 500_000 — raise it rather than silently truncating the space).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 500_000);

    let mut path: Vec<Choice> = Vec::new();
    let mut executions: usize = 0;

    loop {
        executions += 1;
        assert!(
            executions <= max_iterations,
            "loom: exceeded {max_iterations} executions; raise LOOM_MAX_ITERATIONS \
             or lower LOOM_MAX_PREEMPTIONS"
        );

        let sched = Arc::new(Scheduler::new());
        let tid0 = sched.register();
        debug_assert_eq!(tid0, 0);
        let sched0 = Arc::clone(&sched);
        let f0 = Arc::clone(&f);
        let main_handle = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched0), 0)));
            sched0.arrive(0);
            let result = catch_unwind(AssertUnwindSafe(|| f0()));
            let msg = result.as_ref().err().map(|p| panic_message(&**p));
            sched0.finish(0, msg);
            if let Err(p) = result {
                resume_unwind(p);
            }
        });

        let failed = run_one_execution(&sched, &mut path, max_preemptions);

        let main_result = main_handle.join();
        if failed || main_result.is_err() {
            let msg = sched
                .state
                .lock()
                .unwrap()
                .panic_msg
                .clone()
                .unwrap_or_else(|| "model execution failed".into());
            let trail: Vec<usize> = path.iter().map(|c| c.candidates[c.index]).collect();
            panic!(
                "loom: execution {executions} failed (schedule {trail:?}, \
                 preemption bound {max_preemptions}): {msg}"
            );
        }

        // Depth-first backtrack to the last choice with untried options.
        loop {
            match path.last_mut() {
                None => {
                    println!(
                        "loom: explored {executions} executions \
                         (preemption bound {max_preemptions})"
                    );
                    return;
                }
                Some(last) if last.index + 1 < last.candidates.len() => {
                    last.index += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Drive one execution to completion. Returns `true` if it failed
/// (panic in a controlled thread or deadlock).
fn run_one_execution(sched: &Scheduler, path: &mut Vec<Choice>, max_preemptions: usize) -> bool {
    let mut depth = 0usize;
    let mut last_active: Option<usize> = None;
    let max_depth = env_usize("LOOM_MAX_DEPTH", 100_000);

    loop {
        let mut st = sched.state.lock().unwrap();
        // Wait until the previously granted thread has paused, blocked,
        // finished, or aborted.
        while st.active.is_some() && !st.abort {
            st = sched.cv.wait(st).unwrap();
        }
        if st.abort {
            // Release every waiter so all threads unwind, then report.
            sched.cv.notify_all();
            while st.threads.iter().any(|t| *t != Status::Finished) {
                st = sched.cv.wait(st).unwrap();
            }
            return true;
        }
        if st.threads.iter().all(|t| *t == Status::Finished) {
            return false;
        }

        // Candidate selection. Join-blocked threads whose target finished
        // are eligible again; yielded threads only run when nothing
        // runnable exists (they declared themselves unable to progress).
        let eligible = |status: &Status, threads: &[Status]| match *status {
            Status::Runnable => true,
            Status::BlockedJoin(t) => threads[t] == Status::Finished,
            _ => false,
        };
        let mut candidates: Vec<usize> = (0..st.threads.len())
            .filter(|&i| eligible(&st.threads[i], &st.threads))
            .collect();
        if candidates.is_empty() {
            // Only yielded threads whose fairness barrier has drained are
            // eligible; if every barrier is still up (unsatisfiable right
            // now, e.g. the barrier names a join-blocked thread), fall
            // back to all yielded threads rather than falsely deadlock.
            candidates = (0..st.threads.len())
                .filter(|&i| st.threads[i] == Status::Yielded && st.yield_barrier[i].is_empty())
                .collect();
            if candidates.is_empty() {
                candidates = (0..st.threads.len())
                    .filter(|&i| st.threads[i] == Status::Yielded)
                    .collect();
            }
        }
        if candidates.is_empty() {
            st.abort = true;
            st.panic_msg
                .get_or_insert_with(|| "deadlock: every thread is join-blocked".into());
            sched.cv.notify_all();
            while st.threads.iter().any(|t| *t != Status::Finished) {
                st = sched.cv.wait(st).unwrap();
            }
            return true;
        }

        // Put the last-active thread first so "keep running" is the
        // default branch — but only if it paused at a non-yield point: a
        // thread that *yielded* asked to be switched away from, so
        // continuing it is neither the default nor chargeable. For a
        // yielded (or gone) last thread, rotate the order to start just
        // after it, so spinners round-robin instead of the lowest tid
        // starving the rest on the default DFS branch.
        let last_runnable = last_active.is_some_and(|last| st.threads[last] == Status::Runnable);
        if let Some(last) = last_active {
            if last_runnable {
                if let Some(pos) = candidates.iter().position(|&c| c == last) {
                    candidates.swap(0, pos);
                }
            } else {
                let n = st.threads.len();
                candidates.sort_by_key(|&c| (c + n - last - 1) % n);
            }
        }
        let preempting_possible = last_runnable && candidates.first() == last_active.as_ref();
        let prior_preemptions = if depth == 0 {
            0
        } else {
            path[depth - 1].preemptions
        };
        if preempting_possible && prior_preemptions >= max_preemptions {
            candidates.truncate(1);
        }

        if std::env::var_os("LOOM_TRACE").is_some() {
            eprintln!(
                "loom-trace depth={depth} statuses={:?} candidates={candidates:?} last={last_active:?}",
                st.threads
            );
        }
        let choice_tid = if depth < path.len() {
            let choice = &path[depth];
            assert_eq!(
                choice.candidates, candidates,
                "loom: non-deterministic execution (replay diverged at depth {depth})"
            );
            choice.candidates[choice.index]
        } else {
            path.push(Choice {
                candidates: candidates.clone(),
                index: 0,
                preemptions: 0,
            });
            candidates[0]
        };
        let preempted = preempting_possible && Some(choice_tid) != last_active;
        path[depth].preemptions = prior_preemptions + usize::from(preempted);
        depth += 1;
        assert!(
            depth <= max_depth,
            "loom: execution exceeded {max_depth} schedule points \
             (runaway spin?); raise LOOM_MAX_DEPTH if intentional\n\
             statuses: {:?}\nlast choices: {:?}",
            st.threads,
            &path[depth.saturating_sub(20)..]
                .iter()
                .map(|c| (c.candidates.clone(), c.index, c.preemptions))
                .collect::<Vec<_>>()
        );
        last_active = Some(choice_tid);

        // Grant the step: the chosen thread is running again. Other
        // yielded threads stay deprioritized — a yield means "I cannot
        // progress until someone else runs", and resurrecting every
        // yielded thread on every grant lets two spinners starve the one
        // thread that can make progress (the DFS default order would
        // ping-pong between the spinners forever).
        st.threads[choice_tid] = Status::Runnable;
        for barrier in &mut st.yield_barrier {
            barrier.retain(|&t| t != choice_tid);
        }
        st.active = Some(choice_tid);
        sched.cv.notify_all();
    }
}

/// Loom-shaped `thread` API.
pub mod thread {
    use super::{
        catch_unwind, panic_message, resume_unwind, Arc, AssertUnwindSafe, RefCell, Status, CURRENT,
    };

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(tid), Some((sched, my_tid))) =
                (self.tid, CURRENT.with(|c| c.borrow().clone()))
            {
                // Block in the model until the target finishes, then the
                // real join below cannot stall the scheduler.
                loop {
                    let finished = {
                        let st = sched.state.lock().unwrap();
                        st.threads[tid] == Status::Finished
                    };
                    if finished {
                        break;
                    }
                    sched.pause(my_tid, Status::BlockedJoin(tid));
                }
            }
            self.inner.join()
        }
    }

    /// Spawn a controlled thread (falls back to a plain `std` spawn
    /// outside a model run).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match CURRENT.with(|c| c.borrow().clone()) {
            Some((sched, _parent)) => {
                let tid = sched.register();
                let sched2 = Arc::clone(&sched);
                let inner = std::thread::spawn(move || {
                    CURRENT
                        .with(|c: &RefCell<_>| *c.borrow_mut() = Some((Arc::clone(&sched2), tid)));
                    sched2.arrive(tid);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    let msg = result.as_ref().err().map(|p| panic_message(&**p));
                    sched2.finish(tid, msg);
                    match result {
                        Ok(v) => v,
                        Err(p) => resume_unwind(p),
                    }
                });
                // The spawn itself is a schedule point: the child is now
                // a candidate.
                super::schedule_point(false);
                JoinHandle {
                    inner,
                    tid: Some(tid),
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                tid: None,
            },
        }
    }

    /// Declare that this thread cannot progress until another runs.
    pub fn yield_now() {
        super::schedule_point(true);
    }
}

/// Loom-shaped `hint` API: spinning is a yield under the model.
pub mod hint {
    /// Spin-loop hint: a voluntary schedule point.
    pub fn spin_loop() {
        super::schedule_point(true);
    }
}

/// Loom-shaped `cell` API.
pub mod cell {
    /// An unsafe cell with loom's closure-based access API. The shim does
    /// not track aliasing (Miri does); it only provides the shape.
    #[derive(Debug)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Create a cell.
        pub fn new(value: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access to the contents via raw pointer.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the contents via raw pointer.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

/// Loom-shaped `sync` API.
pub mod sync {
    pub use std::sync::Arc;

    /// Model-checked atomics: every operation is a schedule point and
    /// executes with sequentially-consistent semantics regardless of the
    /// ordering argument (weak memory is *not* modeled — see crate docs).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Fences are schedule points only (SeqCst execution already
        /// orders everything).
        pub fn fence(_order: Ordering) {
            crate::schedule_point(false);
        }

        macro_rules! int_atomic {
            ($name:ident, $std:ident, $t:ty) => {
                /// Model-checked integer atomic.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Create with an initial value.
                    pub fn new(v: $t) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    /// Atomic load (schedule point).
                    pub fn load(&self, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Atomic store (schedule point).
                    pub fn store(&self, v: $t, _o: Ordering) {
                        crate::schedule_point(false);
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Atomic swap (schedule point).
                    pub fn swap(&self, v: $t, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic compare-exchange (schedule point).
                    pub fn compare_exchange(
                        &self,
                        cur: $t,
                        new: $t,
                        _ok: Ordering,
                        _err: Ordering,
                    ) -> Result<$t, $t> {
                        crate::schedule_point(false);
                        self.0
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Weak compare-exchange (never spuriously fails here).
                    pub fn compare_exchange_weak(
                        &self,
                        cur: $t,
                        new: $t,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$t, $t> {
                        self.compare_exchange(cur, new, ok, err)
                    }

                    /// Atomic add (schedule point).
                    pub fn fetch_add(&self, v: $t, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Atomic subtract (schedule point).
                    pub fn fetch_sub(&self, v: $t, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Atomic max (schedule point).
                    pub fn fetch_max(&self, v: $t, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.fetch_max(v, Ordering::SeqCst)
                    }

                    /// Atomic or (schedule point).
                    pub fn fetch_or(&self, v: $t, _o: Ordering) -> $t {
                        crate::schedule_point(false);
                        self.0.fetch_or(v, Ordering::SeqCst)
                    }

                    /// Unsynchronized read for `&mut self` (test teardown).
                    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut $t) -> R) -> R {
                        let mut v = self.0.load(Ordering::SeqCst);
                        let r = f(&mut v);
                        self.0.store(v, Ordering::SeqCst);
                        r
                    }
                }
            };
        }

        int_atomic!(AtomicU8, AtomicU8, u8);
        int_atomic!(AtomicU16, AtomicU16, u16);
        int_atomic!(AtomicU32, AtomicU32, u32);
        int_atomic!(AtomicU64, AtomicU64, u64);
        int_atomic!(AtomicUsize, AtomicUsize, usize);

        /// Model-checked boolean atomic.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Create with an initial value.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _o: Ordering) -> bool {
                crate::schedule_point(false);
                self.0.load(Ordering::SeqCst)
            }

            /// Atomic store (schedule point).
            pub fn store(&self, v: bool, _o: Ordering) {
                crate::schedule_point(false);
                self.0.store(v, Ordering::SeqCst)
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, v: bool, _o: Ordering) -> bool {
                crate::schedule_point(false);
                self.0.swap(v, Ordering::SeqCst)
            }
        }

        /// Model-checked pointer atomic.
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> std::fmt::Debug for AtomicPtr<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.0.fmt(f)
            }
        }

        impl<T> AtomicPtr<T> {
            /// Create with an initial value.
            pub fn new(p: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(p))
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _o: Ordering) -> *mut T {
                crate::schedule_point(false);
                self.0.load(Ordering::SeqCst)
            }

            /// Atomic store (schedule point).
            pub fn store(&self, p: *mut T, _o: Ordering) {
                crate::schedule_point(false);
                self.0.store(p, Ordering::SeqCst)
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, p: *mut T, _o: Ordering) -> *mut T {
                crate::schedule_point(false);
                self.0.swap(p, Ordering::SeqCst)
            }

            /// Atomic compare-exchange (schedule point).
            pub fn compare_exchange(
                &self,
                cur: *mut T,
                new: *mut T,
                _ok: Ordering,
                _err: Ordering,
            ) -> Result<*mut T, *mut T> {
                crate::schedule_point(false);
                self.0
                    .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn single_thread_model_runs_once() {
        super::model(|| {
            let a = AtomicU64::new(0);
            a.store(7, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 7);
        });
    }

    #[test]
    fn finds_a_racy_increment() {
        // Two threads doing load-then-store must lose an update on some
        // interleaving: the model has to find it.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for _ in 0..2 {
                    let a = Arc::clone(&a);
                    hs.push(super::thread::spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "model missed the lost-update interleaving");
    }

    #[test]
    fn atomic_increments_always_survive() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let a = Arc::clone(&a);
                hs.push(super::thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn spin_wait_handshake_terminates() {
        // A spins until B publishes; exploration must not hang or starve.
        super::model(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let h = super::thread::spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            while flag.load(Ordering::SeqCst) == 0 {
                super::thread::yield_now();
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn join_waits_for_value() {
        super::model(|| {
            let h = super::thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
