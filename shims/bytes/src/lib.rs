//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset of the real `bytes::Bytes` API this
//! workspace uses: a cheaply cloneable, sliceable view into a shared,
//! immutable byte buffer. `Bytes::from(vec)` takes ownership without
//! copying; `clone` and `slice` are reference-count bumps; the payload
//! is freed when the last view drops.
//!
//! The representation is `Arc<Vec<u8>>` plus an `(offset, len)` window,
//! which matches the real crate's promotable-shared layout closely
//! enough for this workspace's hot paths (one refcounted allocation per
//! distinct buffer, zero-copy slicing of received messages).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable view into a shared byte buffer.
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes`. Allocates only the (empty) backing `Arc`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy `data` into a freshly allocated shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-view; panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off,
            len: self.len,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<Bytes> for [u8; N] {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

impl<'a, T: ?Sized> PartialEq<&'a T> for Bytes
where
    Bytes: PartialEq<T>,
{
    fn eq(&self, other: &&'a T) -> bool {
        *self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_zero_copy_and_sliceable() {
        let v = vec![1u8, 2, 3, 4, 5];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), ptr, "From<Vec> must not copy");
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s.as_ptr(), ptr.wrapping_add(1));
        let s2 = s.slice(..2);
        assert_eq!(s2, &[2u8, 3][..]);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b, b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.clone(), b);
        assert_ne!(b, b"help!");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::copy_from_slice(b"abc").slice(1..5);
    }
}
