//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It supports the subset the workspace uses: the
//! `proptest!` macro with `pattern in strategy` arguments, integer-range
//! and `any::<T>()` strategies, tuple strategies, `collection::vec`, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are sampled from a fixed
//! deterministic seed (reproducible across runs; override the count with
//! `PROPTEST_CASES`), and failing cases are reported but **not shrunk**.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic case RNG (xoshiro256++ seeded via splitmix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A failed property observation (carried by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(v)
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything of type `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Constant strategy (always yields a clone of the value).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification for [`vec`]: a fixed size or a range.
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Driver used by the `proptest!` macro expansion: runs `f` once per
/// case with a per-case deterministic RNG, panicking on the first
/// failure with the case number (re-runnable: the seed is fixed).
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    for case in 0..cases {
        let mut rng = TestRng::new(0xF10C_u64 << 32 | case);
        if let Err(e) = f(&mut rng) {
            panic!("property '{name}' failed at case {case}/{cases}: {e}");
        }
    }
}

/// Define property tests: each function argument is drawn from its
/// strategy once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..10, b in 5i64..=9) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_sizes_respected(v in vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, vec(0u16..3, 1..4))) {
            let (x, v) = pair;
            prop_assert!(x < 4);
            prop_assert!(!v.is_empty() && v.iter().all(|e| *e < 3));
        }
    }

    #[test]
    fn failing_property_panics_with_case() {
        let r = std::panic::catch_unwind(|| {
            crate::run_cases("demo", |rng| {
                let v = rng.next_u64() % 10;
                crate::prop_assert!(v < 5, "v was {}", v);
                Ok(())
            });
        });
        assert!(r.is_err());
    }
}
