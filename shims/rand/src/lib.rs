//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `rand` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It provides the subset the workspace uses: a seeded
//! [`rngs::SmallRng`] (xoshiro256++, the same family real `rand` 0.8
//! uses for `SmallRng` on 64-bit targets), the [`Rng`] extension trait
//! with `gen_range`/`gen_bool`/`gen`, and [`SeedableRng::seed_from_u64`]
//! (seeded via splitmix64, matching the upstream convention). Sequences
//! are deterministic per seed but not bit-identical to upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit values.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(v)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Sample a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }
}
