//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `parking_lot` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It exposes the parking-lot API shape — `lock()`
//! returning a guard directly, no poisoning, `Condvar` working with this
//! `Mutex`, `MutexGuard::unlocked` — implemented over `std::sync`.
//! Poisoned std locks are transparently recovered: parking_lot has no
//! poisoning, and a panic while holding one of these locks already
//! aborts the owning test/process path.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
use std::time::{Duration, Instant};

fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

/// A mutual-exclusion lock (no poisoning, guard returned directly).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` is only `None`
/// transiently inside [`Condvar`] waits and [`MutexGuard::unlocked`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a StdMutex<T>,
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(
            self.inner
                .into_inner()
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: &self.inner,
            guard: Some(recover(self.inner.lock())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: &self.inner,
                guard: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                lock: &self.inner,
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        recover(
            self.inner
                .get_mut()
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily release the lock while running `f`, reacquiring it
    /// afterwards (parking_lot's `MutexGuard::unlocked`).
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        s.guard = None;
        let r = f();
        s.guard = Some(recover(s.lock.lock()));
        r
    }

    fn std_guard(&mut self) -> sync::MutexGuard<'a, T> {
        self.guard.take().expect("guard present outside waits")
    }

    fn restore(&mut self, g: sync::MutexGuard<'a, T>) {
        self.guard = Some(g);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside waits")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside waits")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.std_guard();
        guard.restore(recover(self.inner.wait(g)));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.std_guard();
        let (g, res) = recover(
            self.inner
                .wait_timeout(g, timeout)
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        );
        guard.restore(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (no poisoning, guards returned directly).
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(
            self.inner
                .into_inner()
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: recover(self.inner.read()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: recover(self.inner.write()),
        }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                guard: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                guard: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        recover(
            self.inner
                .get_mut()
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        )
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn guard_unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = Arc::clone(&m);
        let observed = MutexGuard::unlocked(&mut g, move || {
            let v = *m2.lock();
            v
        });
        assert_eq!(observed, 0);
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "notification lost");
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
