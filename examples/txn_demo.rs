//! FlockTX in action: Smallbank money transfers over three replicated
//! servers with OCC + 2PC + one-sided validation (paper §8.5, Fig. 13).
//!
//! Run with: `cargo run --release --example txn_demo`

use std::collections::HashMap;
use std::sync::Arc;

use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::{ConnectionHandle, FlockDomain};
use flock_repro::sim::SimRng;
use flock_repro::txn::protocol::key_partition;
use flock_repro::txn::{Smallbank, TxnClient, TxnOutcome, TxnServer};

const N_SERVERS: usize = 3;
const ACCOUNTS: u64 = 200;

fn main() {
    let domain = FlockDomain::with_defaults();

    // --- Three transaction servers, each primary for one partition -------
    let mut servers = Vec::new();
    let mut txn_servers = Vec::new();
    for i in 0..N_SERVERS {
        let node = domain.add_node(&format!("txn-server-{i}"));
        let server =
            FlockServer::listen(&domain, &node, &format!("txn{i}"), ServerConfig::default());
        let region = server.attach_mreg(1 << 20); // version table for fl_read validation
        let ts = TxnServer::new(i, server.mem_region(region).unwrap());
        ts.register(&server);
        servers.push(server);
        txn_servers.push(ts);
    }

    // --- Load the bank -----------------------------------------------------
    let bank = Smallbank::new(ACCOUNTS);
    for (key, value) in bank.load_keys() {
        txn_servers[key_partition(key, N_SERVERS)].load(key, &value);
    }
    let initial_total: u64 = ACCOUNTS * 2 * 1000;
    println!("loaded {ACCOUNTS} accounts ({initial_total} total balance)");

    // --- Clients run money-conserving transfers ---------------------------
    let client_node = domain.add_node("txn-client");
    let handles: Vec<Arc<ConnectionHandle>> = (0..N_SERVERS)
        .map(|i| {
            Arc::new(
                ConnectionHandle::connect(
                    &domain,
                    &client_node,
                    &format!("txn{i}"),
                    HandleConfig::default(),
                )
                .unwrap(),
            )
        })
        .collect();

    let mut joins = Vec::new();
    for worker in 0..3u64 {
        let handles = handles.clone();
        let bank = bank.clone();
        joins.push(std::thread::spawn(move || {
            let client = TxnClient::new(&handles);
            let mut rng = SimRng::new(worker);
            let (mut commits, mut aborts) = (0u64, 0u64);
            for _ in 0..150 {
                let spec = loop {
                    let s = bank.next(&mut rng);
                    if s.kind == "send_payment" {
                        break s;
                    }
                };
                let (from, to) = (spec.writes[0], spec.writes[1]);
                let outcome = client
                    .run(&[], &spec.writes, |vals| {
                        let f = u64::from_le_bytes(
                            vals[&from].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let t = u64::from_le_bytes(
                            vals[&to].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let amount = 10.min(f);
                        HashMap::from([
                            (from, (f - amount).to_le_bytes().to_vec()),
                            (to, (t + amount).to_le_bytes().to_vec()),
                        ])
                    })
                    .unwrap();
                match outcome {
                    TxnOutcome::Committed(_) => commits += 1,
                    TxnOutcome::Aborted => aborts += 1,
                }
            }
            (commits, aborts)
        }));
    }
    let (mut commits, mut aborts) = (0, 0);
    for j in joins {
        let (c, a) = j.join().unwrap();
        commits += c;
        aborts += a;
    }
    println!("transfers: {commits} committed, {aborts} aborted (hot-account conflicts)");

    // --- Verify the invariant ---------------------------------------------
    let mut total = 0u64;
    for a in 0..ACCOUNTS {
        for key in [Smallbank::savings(a), Smallbank::checking(a)] {
            let v = txn_servers[key_partition(key, N_SERVERS)]
                .peek(key)
                .unwrap();
            total += u64::from_le_bytes(v[..8].try_into().unwrap());
        }
    }
    println!("total balance after transfers: {total} (expected {initial_total})");
    assert_eq!(total, initial_total, "money conservation violated");

    // Replicas hold the logged updates.
    let replicated = (0..ACCOUNTS)
        .flat_map(|a| [Smallbank::savings(a), Smallbank::checking(a)])
        .filter(|&k| {
            let p = key_partition(k, N_SERVERS);
            flock_repro::txn::protocol::replicas_of(p, N_SERVERS)
                .iter()
                .any(|&r| txn_servers[r].peek_backup(k).is_some())
        })
        .count();
    println!("{replicated} keys have replicated backups");

    for s in &servers {
        s.shutdown(&domain);
    }
    println!("done: serializable transfers with 3-way replication over Flock");
}
