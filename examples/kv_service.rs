//! A replicated key-value cache service over Flock RPC — the kind of
//! high fan-in workload the paper's introduction motivates.
//!
//! One server hosts a `flock-kvstore`; several client nodes hammer it
//! with a skewed GET/PUT mix from many threads, sharing QPs under the
//! covers. The example prints throughput and the observed coalescing.
//!
//! Run with: `cargo run --release --example kv_service`

use std::sync::Arc;
use std::time::Instant;

use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::{ConnectionHandle, FlockDomain};
use flock_repro::kvstore::{KvConfig, KvStore};
use flock_repro::sim::SimRng;

const RPC_GET: u32 = 1;
const RPC_PUT: u32 = 2;

fn encode_put(key: u64, value: &[u8]) -> Vec<u8> {
    let mut out = key.to_le_bytes().to_vec();
    out.extend_from_slice(value);
    out
}

fn main() {
    let domain = FlockDomain::with_defaults();
    let server_node = domain.add_node("kv-server");
    let server = FlockServer::listen(&domain, &server_node, "kv", ServerConfig::default());

    let kv = Arc::new(KvStore::new(KvConfig {
        partitions: 4,
        stripes: 32,
    }));
    for k in 0..10_000u64 {
        kv.put(k, format!("value-{k}").as_bytes());
    }
    {
        let kv = Arc::clone(&kv);
        server.reg_handler(RPC_GET, move |req| {
            let key = u64::from_le_bytes(req[..8].try_into().unwrap());
            kv.get(key).map(|(v, _)| v).unwrap_or_default()
        });
    }
    {
        let kv = Arc::clone(&kv);
        server.reg_handler(RPC_PUT, move |req| {
            let key = u64::from_le_bytes(req[..8].try_into().unwrap());
            kv.put(key, &req[8..]);
            b"ok".to_vec()
        });
    }

    // Three client machines, four threads each, 4 outstanding requests.
    let start = Instant::now();
    let mut joins = Vec::new();
    let mut handles = Vec::new();
    for c in 0..3 {
        let node = domain.add_node(&format!("kv-client-{c}"));
        let mut cfg = HandleConfig::default();
        cfg.n_qps = 2; // force QP sharing across the 4 threads
        let handle = Arc::new(ConnectionHandle::connect(&domain, &node, "kv", cfg).unwrap());
        for t in 0..4u64 {
            let th = handle.register_thread();
            joins.push(std::thread::spawn(move || {
                let mut rng = SimRng::new(c as u64 * 100 + t);
                let mut ops = 0u64;
                for _ in 0..125 {
                    // Pipeline 4 ops: 80% GET, 20% PUT, skewed keys.
                    let seqs: Vec<(u64, bool, u64)> = (0..4)
                        .map(|_| {
                            let key = if rng.chance(0.8) {
                                rng.below(100) // hot set
                            } else {
                                rng.below(10_000)
                            };
                            if rng.chance(0.8) {
                                (th.send_rpc(RPC_GET, &key.to_le_bytes()).unwrap(), true, key)
                            } else {
                                let payload = encode_put(key, b"updated");
                                (th.send_rpc(RPC_PUT, &payload).unwrap(), false, key)
                            }
                        })
                        .collect();
                    for (seq, is_get, _key) in seqs {
                        let resp = th.recv_res(seq).unwrap();
                        if !is_get {
                            assert_eq!(resp, b"ok");
                        }
                        ops += 1;
                    }
                }
                ops
            }));
        }
        handles.push(handle);
    }
    let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    let secs = start.elapsed().as_secs_f64();

    println!(
        "completed {total} KV ops in {secs:.2}s ({:.0} ops/s)",
        total as f64 / secs
    );
    println!(
        "server saw {} requests in {} messages (coalescing degree {:.2})",
        server
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        server
            .stats()
            .messages
            .load(std::sync::atomic::Ordering::Relaxed),
        server.stats().mean_coalescing_degree()
    );
    for h in &handles {
        println!(
            "client {}: mean degree {:.2}, {} active QPs",
            h.sender_id(),
            h.mean_coalescing_degree(),
            h.active_qps()
        );
    }
    server.shutdown(&domain);
}
