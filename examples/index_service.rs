//! A network-served ordered index (paper §8.6): HydraList behind Flock
//! RPC, answering point lookups and range scans from many client threads.
//!
//! Run with: `cargo run --release --example index_service`

use std::sync::Arc;

use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::{ConnectionHandle, FlockDomain};
use flock_repro::hydralist::{HydraConfig, HydraList};
use flock_repro::sim::SimRng;

const RPC_GET: u32 = 1;
const RPC_SCAN: u32 = 2;
const RPC_INSERT: u32 = 3;
const KEYS: u64 = 100_000;

fn main() {
    let domain = FlockDomain::with_defaults();
    let server_node = domain.add_node("idx-server");
    let server = FlockServer::listen(&domain, &server_node, "index", ServerConfig::default());

    // Build and preload the index (8 B keys and values, like the paper).
    let index = Arc::new(HydraList::new(HydraConfig::default()));
    for k in 0..KEYS {
        index.insert(k * 2, k);
    }
    println!(
        "index loaded: {} keys across {} data nodes",
        index.len(),
        index.node_count()
    );

    {
        let index = Arc::clone(&index);
        server.reg_handler(RPC_GET, move |req| {
            let key = u64::from_le_bytes(req[..8].try_into().unwrap());
            index.get(key).unwrap_or(u64::MAX).to_le_bytes().to_vec()
        });
    }
    {
        let index = Arc::clone(&index);
        // Paper §8.6: scans use range 64 and the server replies with the
        // number of keys found as an 8 B response.
        server.reg_handler(RPC_SCAN, move |req| {
            let start = u64::from_le_bytes(req[..8].try_into().unwrap());
            (index.scan(start, 64).len() as u64).to_le_bytes().to_vec()
        });
    }
    {
        let index = Arc::clone(&index);
        server.reg_handler(RPC_INSERT, move |req| {
            let key = u64::from_le_bytes(req[..8].try_into().unwrap());
            let value = u64::from_le_bytes(req[8..16].try_into().unwrap());
            index.insert(key, value);
            b"ok".to_vec()
        });
    }

    // Two client machines, 90% get / 10% scan plus a writer thread.
    let mut joins = Vec::new();
    let mut handles = Vec::new();
    for c in 0..2 {
        let node = domain.add_node(&format!("idx-client-{c}"));
        let handle = Arc::new(
            ConnectionHandle::connect(&domain, &node, "index", HandleConfig::default()).unwrap(),
        );
        for t in 0..3u64 {
            let th = handle.register_thread();
            joins.push(std::thread::spawn(move || {
                let mut rng = SimRng::new(c as u64 * 10 + t);
                let (mut gets, mut scans, mut found) = (0u64, 0u64, 0u64);
                for _ in 0..200 {
                    let key = rng.below(KEYS) * 2;
                    if rng.chance(0.9) {
                        let v = th.call(RPC_GET, &key.to_le_bytes()).unwrap();
                        let v = u64::from_le_bytes(v[..].try_into().unwrap());
                        assert_eq!(v, key / 2, "index returned the wrong value");
                        gets += 1;
                    } else {
                        let n = th.call(RPC_SCAN, &key.to_le_bytes()).unwrap();
                        found += u64::from_le_bytes(n[..].try_into().unwrap());
                        scans += 1;
                    }
                }
                (gets, scans, found)
            }));
        }
        handles.push(handle);
    }
    // A writer extends the keyspace concurrently.
    {
        let th = handles[0].register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..100u64 {
                let key = (KEYS + i) * 2;
                let mut payload = key.to_le_bytes().to_vec();
                payload.extend_from_slice(&(key / 2).to_le_bytes());
                th.call(RPC_INSERT, &payload).unwrap();
            }
            (0, 0, 0)
        }));
    }

    let (mut gets, mut scans, mut found) = (0u64, 0u64, 0u64);
    for j in joins {
        let (g, s, f) = j.join().unwrap();
        gets += g;
        scans += s;
        found += f;
    }
    println!(
        "{gets} gets, {scans} scans ({} keys touched by scans), inserts grew the index to {}",
        found,
        index.len()
    );
    println!(
        "server coalescing degree: {:.2}",
        server.stats().mean_coalescing_degree()
    );
    assert_eq!(index.len() as u64, KEYS + 100);
    server.shutdown(&domain);
}
