//! One-sided memory and atomic operations (paper §6): `fl_read`,
//! `fl_write`, `fl_fetch_and_add`, `fl_cmp_and_swap` against a server
//! memory region, with zero server CPU involvement — plus a small
//! lock-free remote counter and a spinlock built from remote CAS.
//!
//! Run with: `cargo run --example memops`

use std::sync::Arc;

use flock_repro::core::api::*;
use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::FlockDomain;

fn main() {
    let domain = FlockDomain::with_defaults();
    let server_node = domain.add_node("mem-server");
    let client_node = domain.add_node("mem-client");

    let server = FlockServer::listen(&domain, &server_node, "mem-svc", ServerConfig::default());
    // Expose 1 MiB for one-sided access (fl_attach_mreg).
    let region = fl_attach_mreg(&server, 1 << 20);
    server
        .mem_region(region)
        .unwrap()
        .write(0, b"initial server state")
        .unwrap();

    let handle =
        Arc::new(fl_connect(&domain, &client_node, "mem-svc", HandleConfig::default()).unwrap());

    // --- Plain reads and writes ------------------------------------------
    let t = handle.register_thread();
    let data = fl_read(&t, region, 0, 20).unwrap();
    println!("read:  {:?}", String::from_utf8_lossy(&data));
    fl_write(&t, region, 64, b"written by the client").unwrap();
    let back = fl_read(&t, region, 64, 21).unwrap();
    println!("wrote: {:?}", String::from_utf8_lossy(&back));

    // --- A remote counter via fetch-and-add ------------------------------
    const COUNTER: u64 = 1024;
    let mut joins = Vec::new();
    for _ in 0..4 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for _ in 0..250 {
                fl_fetch_and_add(&t, 0, COUNTER, 1).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let count = u64::from_le_bytes(fl_read(&t, region, COUNTER, 8).unwrap().try_into().unwrap());
    println!("remote counter after 4x250 fetch-add: {count}");
    assert_eq!(count, 1000);

    // --- A remote spinlock via compare-and-swap ---------------------------
    const LOCK: u64 = 2048;
    const SHARED: u64 = 2056;
    let mut joins = Vec::new();
    for _ in 0..3 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for _ in 0..50 {
                // Acquire: CAS 0 -> 1.
                while fl_cmp_and_swap(&t, 0, LOCK, 0, 1).unwrap() != 0 {
                    std::thread::yield_now();
                }
                // Critical section: non-atomic read-modify-write, made
                // safe by the remote lock.
                let v = u64::from_le_bytes(fl_read(&t, 0, SHARED, 8).unwrap().try_into().unwrap());
                fl_write(&t, 0, SHARED, &(v + 1).to_le_bytes()).unwrap();
                // Release.
                fl_cmp_and_swap(&t, 0, LOCK, 1, 0).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let shared = u64::from_le_bytes(fl_read(&t, region, SHARED, 8).unwrap().try_into().unwrap());
    println!("remote-spinlock-protected counter: {shared}");
    assert_eq!(shared, 150);

    println!("all one-sided operations verified; server CPU untouched");
    server.shutdown(&domain);
}
