//! Quickstart: a Flock echo service.
//!
//! Demonstrates the core `fl_*` workflow from the paper's Table 2:
//! a server registers handlers, clients connect through a connection
//! handle, and multiple application threads share the handle's QPs with
//! coalescing happening transparently underneath.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use flock_repro::core::api::{fl_connect, fl_recv_res, fl_reg_handler, fl_send_rpc};
use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::FlockDomain;

const RPC_ECHO: u32 = 1;
const RPC_UPPER: u32 = 2;

fn main() {
    // The "datacenter": an in-process RDMA fabric plus a name registry.
    let domain = FlockDomain::with_defaults();
    let server_node = domain.add_node("server");
    let client_node = domain.add_node("client");

    // --- Server side -----------------------------------------------------
    let server = FlockServer::listen(&domain, &server_node, "echo-svc", ServerConfig::default());
    fl_reg_handler(&server, RPC_ECHO, |req| req.to_vec());
    fl_reg_handler(&server, RPC_UPPER, |req| req.to_ascii_uppercase());

    // --- Client side -----------------------------------------------------
    let handle = Arc::new(
        fl_connect(&domain, &client_node, "echo-svc", HandleConfig::default())
            .expect("connect to echo-svc"),
    );

    // Four application threads share the handle's QPs; each pipelines
    // four outstanding requests.
    let mut joins = Vec::new();
    for tid in 0..4 {
        let t = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..100 {
                let msg = format!("hello-{tid}-{i}");
                let seqs = [
                    fl_send_rpc(&t, RPC_ECHO, msg.as_bytes()).unwrap(),
                    fl_send_rpc(&t, RPC_UPPER, msg.as_bytes()).unwrap(),
                ];
                let echoed = fl_recv_res(&t, seqs[0]).unwrap();
                let upper = fl_recv_res(&t, seqs[1]).unwrap();
                assert_eq!(echoed, msg.as_bytes());
                assert_eq!(upper, msg.to_ascii_uppercase().as_bytes());
            }
            println!("thread {tid}: 200 RPCs done");
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    println!(
        "server processed {} requests in {} coalesced messages (mean degree {:.2})",
        server
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        server
            .stats()
            .messages
            .load(std::sync::atomic::Ordering::Relaxed),
        server.stats().mean_coalescing_degree(),
    );
    server.shutdown(&domain);
}
