//! The motivation experiment (paper §2.2, Figure 1) on the *threaded*
//! fabric: a high fan-in pattern where many client QPs hammer one server,
//! and the server RNIC's connection cache goes from fitting the working
//! set to thrashing.
//!
//! The threaded fabric runs in real time without modeled delays, so this
//! example demonstrates the *cache accounting* (hit ratios), not
//! throughput — Figure 2's timing shapes live in `cargo bench fig2`.
//!
//! Run with: `cargo run --release --example fan_in`

use std::sync::Arc;

use flock_repro::fabric::cache::Eviction;
use flock_repro::fabric::{
    Access, ConnCache, Fabric, FabricConfig, RemoteAddr, SendWr, Sge, Transport, WrId,
};

fn run(total_qps: usize, cache_entries: usize) -> f64 {
    let mut config = FabricConfig::default();
    config.nic_cache_entries = cache_entries;
    let fabric = Fabric::new(config);
    let server = fabric.add_node("server");
    let smr = server.register_mr(1 << 16, Access::REMOTE_ALL);
    let scq = server.create_cq(1024);

    // 8 client nodes share the QPs evenly (fan-in).
    let clients: Vec<_> = (0..8).map(|i| fabric.add_node(&format!("c{i}"))).collect();
    let mut qps = Vec::new();
    for (i, client) in clients.iter().cycle().take(total_qps).enumerate() {
        let mr = client.register_mr(64, Access::LOCAL);
        let cq = client.create_cq(16);
        let qp = client.create_qp(Transport::Rc, &cq, &cq);
        let sqp = server.create_qp(Transport::Rc, &scq, &scq);
        fabric.connect(&qp, &sqp).unwrap();
        qps.push((Arc::clone(client), mr, cq, qp, i));
    }

    // Several rounds of 16-byte reads across all QPs.
    for _round in 0..4 {
        for (_c, mr, _cq, qp, i) in &qps {
            qp.post_send(SendWr::read(
                WrId(*i as u64),
                Sge {
                    lkey: mr.lkey(),
                    addr: mr.addr(),
                    len: 16,
                },
                RemoteAddr {
                    rkey: smr.rkey(),
                    addr: smr.addr(),
                },
            ))
            .unwrap();
        }
        for (_c, _mr, cq, _qp, _i) in &qps {
            cq.wait_one(std::time::Duration::from_secs(5)).unwrap();
        }
    }
    let cache = server.cache().lock();
    cache.hit_ratio()
}

fn main() {
    println!("server NIC connection cache under growing fan-in (threaded fabric)");
    println!("qps\tcache=256\tcache=64");
    for total_qps in [16, 64, 128, 256] {
        let big = run(total_qps, 256);
        let small = run(total_qps, 64);
        println!("{total_qps}\t{big:.2}\t\t{small:.2}");
    }

    // The same effect, isolated on the cache model itself.
    println!("\nstandalone LRU vs random eviction at 2x capacity (cyclic access):");
    for (name, policy) in [("lru", Eviction::Lru), ("random", Eviction::Random)] {
        let mut c = ConnCache::with_policy(128, policy, 7);
        for _ in 0..8 {
            for k in 0..256u64 {
                c.access(k);
            }
        }
        println!("  {name}: hit ratio {:.2}", c.hit_ratio());
    }
    println!("\ntakeaway: bounding active QPs below the cache capacity (MAX_AQP) keeps hits ~1.0");
}
