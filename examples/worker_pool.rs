//! The manual RPC API (paper Table 2: `fl_recv_rpc` / `fl_send_res`):
//! instead of registering handlers that run on the dispatcher, the
//! application manages its own pool of RPC worker threads — the paper's
//! "application-managed pool of RPC workers" (§4.3).
//!
//! The workers here simulate a compute-heavy service (checksum over the
//! payload) where handler-on-dispatcher execution would serialize the
//! server.
//!
//! Run with: `cargo run --release --example worker_pool`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flock_repro::core::api::{fl_connect, fl_recv_rpc, fl_send_res};
use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::FlockDomain;

const RPC_CHECKSUM: u32 = 7;
const N_WORKERS: usize = 4;

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn main() {
    let domain = FlockDomain::with_defaults();
    let server_node = domain.add_node("pool-server");
    let server = Arc::new(FlockServer::listen(
        &domain,
        &server_node,
        "pool",
        ServerConfig::default(),
    ));
    // No handler registered for RPC_CHECKSUM: requests flow to the manual
    // queue that the worker pool drains.
    let served = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..N_WORKERS {
        let server = Arc::clone(&server);
        let served = Arc::clone(&served);
        workers.push(std::thread::spawn(move || {
            let mut handled = 0u64;
            loop {
                match fl_recv_rpc(&server, Duration::from_millis(200)) {
                    Some(req) => {
                        assert_eq!(req.rpc_id, RPC_CHECKSUM);
                        let sum = fnv1a(&req.data);
                        fl_send_res(&server, req.token, &sum.to_le_bytes()).unwrap();
                        handled += 1;
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    // Idle timeout after the clients are done: exit.
                    None if served.load(Ordering::Relaxed) >= 600 => break,
                    None => continue,
                }
            }
            println!("worker {w}: handled {handled} requests");
        }));
    }

    // Two client nodes, three threads each.
    let mut joins = Vec::new();
    let mut handles = Vec::new();
    for c in 0..2 {
        let node = domain.add_node(&format!("pool-client-{c}"));
        let handle = Arc::new(fl_connect(&domain, &node, "pool", HandleConfig::default()).unwrap());
        for t in 0..3u64 {
            let th = handle.register_thread();
            joins.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let payload = vec![(c as u8) ^ (t as u8) ^ (i as u8); 64 + (i as usize % 64)];
                    let resp = th.call(RPC_CHECKSUM, &payload).unwrap();
                    let got = u64::from_le_bytes(resp[..].try_into().unwrap());
                    assert_eq!(got, fnv1a(&payload), "checksum mismatch");
                }
            }));
        }
        // Keep the handle alive until its threads finish.
        handles.push(handle);
    }
    for j in joins {
        j.join().unwrap();
    }
    for w in workers {
        w.join().unwrap();
    }
    println!(
        "worker pool served {} checksums over the manual fl_recv_rpc / fl_send_res API",
        served.load(Ordering::Relaxed)
    );
    server.shutdown(&domain);
}
