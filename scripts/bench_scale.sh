#!/usr/bin/env sh
# Virtual-time scaling sweep: the real receive path (TCQ, sharded
# dispatch, multi-lane NIC, QP scheduler) inside the deterministic
# virtual-time lab, written to BENCH_scale.json (see EXPERIMENTS.md
# "Virtual-time scaling surface").
#
# Usage:
#   scripts/bench_scale.sh            full sweep (the checked-in surface)
#   scripts/bench_scale.sh --quick    CI smoke (two small points)
#
# Extra arguments are passed through, e.g. `--reqs 48 --out /tmp/s.json`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --release -p flock-bench --bin bench_scale -- "$@"
