#!/bin/sh
# Run the RPC-vs-one-sided crossover benchmark (BENCH_onesided.json).
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p flock-bench --bin bench_onesided -- "$@"
