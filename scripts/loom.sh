#!/usr/bin/env sh
# Model-check the TCQ protocol under the loom scheduler.
#
# Equivalent to `cargo loom` (alias in .cargo/config.toml). Knobs, all
# optional, are passed through to the model checker:
#   LOOM_MAX_PREEMPTIONS  preemption bound per execution (default 2)
#   LOOM_MAX_ITERATIONS   executions per test before giving up (default 500000)
#   LOOM_MAX_DEPTH        schedule-point bound per execution (default 100000)
#   LOOM_TRACE=1          print every scheduling decision (very verbose)
#
# Extra arguments go to the test binary, e.g. `scripts/loom.sh handoff`.
set -eu
cd "$(dirname "$0")/.."

export RUSTFLAGS="--cfg loom ${RUSTFLAGS:-}"
exec cargo test -p flock-core --test loom_tcq --release -- "$@"
