#!/usr/bin/env sh
# Model-check the workspace's lock-free protocols under the loom
# scheduler: the TCQ (flock-core) and the completion-queue ring
# (flock-fabric).
#
# Equivalent to `cargo loom` (alias in .cargo/config.toml, which drives
# `cargo xtask loom` over every suite). Knobs, all optional, are passed
# through to the model checker:
#   LOOM_MAX_PREEMPTIONS  preemption bound per execution (default 2)
#   LOOM_MAX_ITERATIONS   executions per test before giving up (default 500000)
#   LOOM_MAX_DEPTH        schedule-point bound per execution (default 100000)
#   LOOM_TRACE=1          print every scheduling decision (very verbose)
#
# Extra arguments filter the tests in every suite, e.g.
# `scripts/loom.sh handoff`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --quiet --release -p xtask -- loom "$@"
