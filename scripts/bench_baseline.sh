#!/usr/bin/env sh
# Generate the perf baseline: hot-path microbenchmarks (TCQ pooled vs
# boxed, ring wrap boundary) plus a fig6-style end-to-end sweep, written
# to BENCH_micro.json (see EXPERIMENTS.md "Perf baseline").
#
# Usage:
#   scripts/bench_baseline.sh            full windows (the checked-in baseline)
#   scripts/bench_baseline.sh --quick    CI smoke (seconds, noisier numbers)
#
# Extra arguments are passed through, e.g. `--out /tmp/b.json`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --release -p flock-bench --bin bench_baseline -- "$@"
