#!/usr/bin/env sh
# Run the flock-core test suite under ThreadSanitizer.
#
# TSan complements the loom suite: loom explores interleavings of *small*
# scenarios exhaustively (SeqCst semantics only), while TSan watches the
# full-size stress tests execute with real hardware weak memory ordering.
#
# `-Z sanitizer` needs a nightly toolchain plus the rust-src component
# (for `-Z build-std`). Offline build environments cannot install those,
# so this script *skips* (exit 0 with a notice) when they are missing.
#
# Extra arguments go to the test binary, e.g. `scripts/tsan.sh tcq`.
set -eu
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "tsan.sh: SKIP — no nightly toolchain (needs: rustup toolchain install nightly)"
    exit 0
fi
sysroot="$(rustc +nightly --print sysroot 2>/dev/null)" || sysroot=""
if [ -z "$sysroot" ] || [ ! -d "$sysroot/lib/rustlib/src/rust/library" ]; then
    echo "tsan.sh: SKIP — rust-src missing (needs: rustup +nightly component add rust-src)"
    exit 0
fi

target="$(rustc +nightly --version --verbose | sed -n 's/^host: //p')"
export RUSTFLAGS="-Z sanitizer=thread ${RUSTFLAGS:-}"
# TSan slows execution ~10x; halve thread counts via test-threads=1 to
# keep scheduler-induced timeouts out of the signal.
exec cargo +nightly test -p flock-core -Z build-std --target "$target" -- --test-threads=1 "$@"
