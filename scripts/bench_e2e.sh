#!/usr/bin/env sh
# Fan-in throughput benchmark: N client nodes against one server,
# swept over (dispatch_threads, nic_lanes) configurations, written to
# BENCH_e2e.json (see EXPERIMENTS.md "Receive-path scaling").
#
# Usage:
#   scripts/bench_e2e.sh            full windows (the checked-in baseline)
#   scripts/bench_e2e.sh --quick    CI smoke (sub-second windows, noisier)
#
# Extra arguments are passed through, e.g. `--clients 16 --out /tmp/e.json`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --release -p flock-bench --bin bench_e2e -- "$@"
