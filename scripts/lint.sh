#!/usr/bin/env sh
# Run the workspace invariant checker (`cargo xtask lint`): four
# AST-level rules over every crate —
#   determinism  time/scheduler/entropy calls outside the
#                flock_sync::clock seam   (allowlist: determinism.allow)
#   lock-order   cycles in the cross-crate Mutex/RwLock acquisition
#                graph                     (allowlist: lockorder.allow)
#   safety       `unsafe` without a `// SAFETY:` comment (no allowlist)
#   hot-alloc    allocations reachable from the declared hot-path entry
#                points                    (allowlist: hotpath.allow)
#
# Equivalent to `cargo lint` (alias in .cargo/config.toml). Arguments
# are passed through: `-D` denies warnings (CI mode), `--rule <name>`
# runs one rule, `--fix-allow` appends TODO skeletons for new findings.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --quiet --release -p xtask -- lint "$@"
