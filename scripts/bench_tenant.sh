#!/usr/bin/env sh
# Multi-tenant gateway benchmark: wire-protocol edge sessions fanning
# into a kvstore-backed Flock server over shared, capped per-tenant
# connections, inside the deterministic virtual-time lab, written to
# BENCH_tenant.json (see EXPERIMENTS.md "Multi-tenancy").
#
# Usage:
#   scripts/bench_tenant.sh            full suite (the checked-in file)
#   scripts/bench_tenant.sh --quick    CI smoke (small cohorts)
#
# Extra arguments are passed through, e.g. `--out /tmp/tenant.json`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --release -p flock-bench --bin bench_tenant -- "$@"
