#!/usr/bin/env sh
# Connection-churn benchmark: the elastic control plane (pooled QPs,
# cached MRs, lazy lanes, graceful detach) inside the deterministic
# virtual-time lab, written to BENCH_churn.json (see EXPERIMENTS.md
# "Connection churn").
#
# Usage:
#   scripts/bench_churn.sh            full suite (the checked-in file)
#   scripts/bench_churn.sh --quick    CI smoke (small cohorts)
#
# Extra arguments are passed through, e.g. `--out /tmp/churn.json`.
set -eu
cd "$(dirname "$0")/.."

exec cargo run --release -p flock-bench --bin bench_churn -- "$@"
