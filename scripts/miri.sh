#!/usr/bin/env sh
# Run the TCQ tests under Miri, the rustc interpreter that checks for
# undefined behavior (aliasing violations at the retire_node/pool
# reclamation sites — drop_in_place + raw-block recycling — data races
# under its weak-memory emulation, leaks).
#
# Miri needs a nightly toolchain with the `miri` component. Offline build
# environments cannot install it, so this script *skips* (exit 0 with a
# notice) when Miri is unavailable rather than failing the suite; the CI
# miri job runs it for real.
#
# Extra arguments go to `cargo miri test`, e.g. `scripts/miri.sh tcq`.
set -eu
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "miri.sh: SKIP — miri is not installed (needs: rustup +nightly component add miri)"
    exit 0
fi

# -Zmiri-strict-provenance: the TCQ's raw node pointers (pooled blocks
#   and the Box escape hatch) must stay provenance-clean (no int-to-ptr
#   round trips).
# -Zmiri-disable-isolation: the contention tests use the host clock
#   (thread::sleep) to hold batches open.
# Callers can override by exporting MIRIFLAGS themselves.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance -Zmiri-disable-isolation}"

# Heavy tcq tests shrink themselves under cfg(miri); see tcq.rs.
filter="${1:-tcq}"
[ "$#" -gt 0 ] && shift
exec cargo +nightly miri test -p flock-core "$filter" "$@"
