//! Umbrella crate re-exporting the Flock reproduction workspace.
pub use flock_baselines as baselines;
pub use flock_core as core;
pub use flock_fabric as fabric;
pub use flock_hydralist as hydralist;
pub use flock_kvstore as kvstore;
pub use flock_models as models;
pub use flock_sim as sim;
pub use flock_txn as txn;
