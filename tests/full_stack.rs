//! Cross-crate integration tests: the threaded Flock stack, the baselines,
//! the application substrates, and the simulation models working together.

use std::collections::HashMap;
use std::sync::Arc;

use flock_repro::baselines::lockshare::{LockShareConfig, LockSharedClient};
use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::{ConnectionHandle, FlockDomain};
use flock_repro::hydralist::{HydraConfig, HydraList};
use flock_repro::models::{run_rpc, RpcConfig, SystemKind};
use flock_repro::sim::{Ns, SimRng};
use flock_repro::txn::protocol::key_partition;
use flock_repro::txn::{Tatp, TxnClient, TxnOutcome, TxnServer};

/// A Flock client and a FaRM-style lock-sharing client talk to the same
/// server concurrently — the wire protocol is shared.
#[test]
fn flock_and_lockshare_clients_coexist() {
    let domain = FlockDomain::with_defaults();
    let snode = domain.add_node("mixed-server");
    let server = FlockServer::listen(&domain, &snode, "mixed", ServerConfig::default());
    server.reg_handler(1, |req| {
        let mut v = req.to_vec();
        v.push(b'!');
        v
    });

    let fnode = domain.add_node("flock-client");
    let lnode = domain.add_node("lock-client");
    let fh = ConnectionHandle::connect(&domain, &fnode, "mixed", HandleConfig::default()).unwrap();
    let lh =
        LockSharedClient::connect(&domain, &lnode, "mixed", LockShareConfig::default()).unwrap();

    let ft = fh.register_thread();
    let lt = lh.register_thread();
    let a = std::thread::spawn(move || {
        for i in 0..60 {
            let msg = format!("flock{i}");
            assert_eq!(
                ft.call(1, msg.as_bytes()).unwrap(),
                format!("flock{i}!").as_bytes()
            );
        }
    });
    for i in 0..60 {
        let msg = format!("lock{i}");
        assert_eq!(
            lt.call(1, msg.as_bytes()).unwrap(),
            format!("lock{i}!").as_bytes()
        );
    }
    a.join().unwrap();
    server.shutdown(&domain);
}

/// TATP transactions over the full threaded stack, with correctness of the
/// subscriber rows checked after a mixed read/update run.
#[test]
fn tatp_over_threaded_flocktx() {
    const N_SERVERS: usize = 3;
    let domain = FlockDomain::with_defaults();
    let mut servers = Vec::new();
    let mut txn_servers = Vec::new();
    for i in 0..N_SERVERS {
        let node = domain.add_node(&format!("tatp-s{i}"));
        let server =
            FlockServer::listen(&domain, &node, &format!("tatp{i}"), ServerConfig::default());
        let region = server.attach_mreg(1 << 20);
        let ts = TxnServer::new(i, server.mem_region(region).unwrap());
        ts.register(&server);
        servers.push(server);
        txn_servers.push(ts);
    }
    let tatp = Tatp::new(500);
    for (k, v) in tatp.load_keys() {
        txn_servers[key_partition(k, N_SERVERS)].load(k, &v);
    }

    let cnode = domain.add_node("tatp-client");
    let handles: Vec<Arc<ConnectionHandle>> = (0..N_SERVERS)
        .map(|i| {
            Arc::new(
                ConnectionHandle::connect(
                    &domain,
                    &cnode,
                    &format!("tatp{i}"),
                    HandleConfig::default(),
                )
                .unwrap(),
            )
        })
        .collect();
    let client = TxnClient::new(&handles);
    let mut rng = SimRng::new(99);
    let (mut commits, mut aborts, mut reads) = (0, 0, 0);
    for _ in 0..150 {
        let spec = tatp.next(&mut rng);
        let writes = spec.writes.clone();
        let outcome = client
            .run(&spec.reads, &spec.writes, |vals| {
                writes
                    .iter()
                    .map(|&k| {
                        let mut v = vals
                            .get(&k)
                            .and_then(|o| o.clone())
                            .unwrap_or_else(|| vec![0; 32]);
                        v[0] = v[0].wrapping_add(1);
                        (k, v)
                    })
                    .collect::<HashMap<_, _>>()
            })
            .unwrap();
        match outcome {
            TxnOutcome::Committed(vals) => {
                commits += 1;
                reads += vals.len();
            }
            TxnOutcome::Aborted => aborts += 1,
        }
    }
    assert!(commits > 100, "commits={commits} aborts={aborts}");
    assert!(reads > 0);
    for s in &servers {
        s.shutdown(&domain);
    }
}

/// The HydraList index stays consistent when served over Flock RPC from
/// concurrently inserting and scanning clients.
#[test]
fn index_service_consistency_under_concurrency() {
    let domain = FlockDomain::with_defaults();
    let snode = domain.add_node("idx-s");
    let server = FlockServer::listen(&domain, &snode, "idx", ServerConfig::default());
    let index = Arc::new(HydraList::new(HydraConfig {
        node_capacity: 16,
        sync_search_updates: true,
    }));
    {
        let index = Arc::clone(&index);
        server.reg_handler(1, move |req| {
            let k = u64::from_le_bytes(req[..8].try_into().unwrap());
            let v = u64::from_le_bytes(req[8..16].try_into().unwrap());
            index.insert(k, v);
            vec![]
        });
    }
    {
        let index = Arc::clone(&index);
        server.reg_handler(2, move |req| {
            let k = u64::from_le_bytes(req[..8].try_into().unwrap());
            index.get(k).unwrap_or(u64::MAX).to_le_bytes().to_vec()
        });
    }
    let cnode = domain.add_node("idx-c");
    let handle = Arc::new(
        ConnectionHandle::connect(&domain, &cnode, "idx", HandleConfig::default()).unwrap(),
    );
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let th = handle.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..100u64 {
                let k = t * 1000 + i;
                let mut payload = k.to_le_bytes().to_vec();
                payload.extend_from_slice(&(k * 3).to_le_bytes());
                th.call(1, &payload).unwrap();
                let got = th.call(2, &k.to_le_bytes()).unwrap();
                assert_eq!(u64::from_le_bytes(got[..].try_into().unwrap()), k * 3);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(index.len(), 400);
    server.shutdown(&domain);
}

/// The DES reproduces the paper's headline shape end to end: Flock beats
/// the UD baseline at high thread counts and coalescing rises with
/// contention.
#[test]
fn simulation_reproduces_headline_shape() {
    let mut cfg = RpcConfig::default();
    cfg.n_clients = 8;
    cfg.threads_per_client = 24;
    cfg.lanes_per_client = 24;
    // 192 lanes against a 64-QP budget: the scheduler forces sharing,
    // which is where coalescing comes from.
    cfg.max_aqp = 64;
    cfg.outstanding = 4;
    cfg.duration = Ns::from_millis(3);
    cfg.warmup = Ns::from_millis(1);
    let flock = run_rpc(&cfg);
    let mut ud = cfg.clone();
    ud.system = SystemKind::UdRpc;
    let erpc = run_rpc(&ud);
    assert!(
        flock.mops > erpc.mops * 1.2,
        "flock {} vs erpc {}",
        flock.mops,
        erpc.mops
    );
    assert!(flock.degree > 1.1, "degree {}", flock.degree);
    assert!(
        flock.median_us < erpc.median_us,
        "flock med {} vs erpc {}",
        flock.median_us,
        erpc.median_us
    );
}

/// Virtual-time determinism across the whole model stack.
#[test]
fn simulation_is_deterministic_end_to_end() {
    let mut cfg = RpcConfig::default();
    cfg.n_clients = 6;
    cfg.threads_per_client = 8;
    cfg.lanes_per_client = 8;
    cfg.duration = Ns::from_millis(2);
    cfg.warmup = Ns::from_millis(1);
    let a = run_rpc(&cfg);
    let b = run_rpc(&cfg);
    assert_eq!(a.mops, b.mops);
    assert_eq!(a.p99_us, b.p99_us);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.packets, b.packets);
}
