//! A mixed-workload stress test: RPCs, one-sided operations, and
//! transactions hammering the same three-server cluster from multiple
//! client nodes concurrently — everything the paper's API surface offers,
//! at once.

use std::collections::HashMap;
use std::sync::Arc;

use flock_repro::core::client::HandleConfig;
use flock_repro::core::server::{FlockServer, ServerConfig};
use flock_repro::core::{ConnectionHandle, FlockDomain};
use flock_repro::sim::SimRng;
use flock_repro::txn::protocol::key_partition;
use flock_repro::txn::{Smallbank, TxnClient, TxnOutcome, TxnServer};

const N_SERVERS: usize = 3;
const RPC_ECHO: u32 = 100;

#[test]
fn mixed_rpc_memops_and_transactions_under_load() {
    let domain = FlockDomain::with_defaults();
    let mut servers = Vec::new();
    let mut txn_servers = Vec::new();
    for i in 0..N_SERVERS {
        let node = domain.add_node(&format!("stress-s{i}"));
        let mut cfg = ServerConfig::default();
        cfg.sched.grant_size = 16; // extra credit churn
        let server = FlockServer::listen(&domain, &node, &format!("stress{i}"), cfg);
        let region = server.attach_mreg(1 << 20);
        let ts = TxnServer::new(i, server.mem_region(region).unwrap());
        ts.register(&server);
        server.reg_handler(RPC_ECHO, |req| req.to_vec());
        servers.push(server);
        txn_servers.push(ts);
    }

    let bank = Smallbank::new(80);
    for (k, v) in bank.load_keys() {
        txn_servers[key_partition(k, N_SERVERS)].load(k, &v);
    }
    let initial_total: u64 = 80 * 2 * 1000;

    // Two client machines, each with handles to all three servers.
    let mut joins = Vec::new();
    let mut all_handles = Vec::new();
    for c in 0..2u64 {
        let cnode = domain.add_node(&format!("stress-c{c}"));
        let handles: Vec<Arc<ConnectionHandle>> = (0..N_SERVERS)
            .map(|i| {
                let mut cfg = HandleConfig::default();
                cfg.n_qps = 2; // force sharing among the workload threads
                Arc::new(
                    ConnectionHandle::connect(&domain, &cnode, &format!("stress{i}"), cfg).unwrap(),
                )
            })
            .collect();

        // Transaction workers (money-conserving transfers).
        for w in 0..2u64 {
            let handles = handles.clone();
            let bank = bank.clone();
            joins.push(std::thread::spawn(move || {
                let client = TxnClient::new(&handles);
                let mut rng = SimRng::new(c * 100 + w);
                let mut commits = 0;
                while commits < 40 {
                    let spec = loop {
                        let s = bank.next(&mut rng);
                        if s.kind == "send_payment" {
                            break s;
                        }
                    };
                    let (from, to) = (spec.writes[0], spec.writes[1]);
                    if let TxnOutcome::Committed(_) = client
                        .run(&[], &spec.writes, |vals| {
                            let f = u64::from_le_bytes(
                                vals[&from].as_ref().unwrap()[..8].try_into().unwrap(),
                            );
                            let t = u64::from_le_bytes(
                                vals[&to].as_ref().unwrap()[..8].try_into().unwrap(),
                            );
                            let amt = 3.min(f);
                            HashMap::from([
                                (from, (f - amt).to_le_bytes().to_vec()),
                                (to, (t + amt).to_le_bytes().to_vec()),
                            ])
                        })
                        .unwrap()
                    {
                        commits += 1;
                    }
                }
            }));
        }

        // RPC workers (pipelined echoes to every server).
        for _ in 0..2 {
            let threads: Vec<_> = handles.iter().map(|h| h.register_thread()).collect();
            joins.push(std::thread::spawn(move || {
                for i in 0..80u64 {
                    let payload = i.to_le_bytes();
                    let seqs: Vec<(usize, u64)> = threads
                        .iter()
                        .enumerate()
                        .map(|(s, t)| (s, t.send_rpc(RPC_ECHO, &payload).unwrap()))
                        .collect();
                    for (s, seq) in seqs {
                        assert_eq!(threads[s].recv_res(seq).unwrap(), payload);
                    }
                }
            }));
        }

        // One-sided workers writing to a private scratch area of server
        // 0's version region (high offsets, untouched by the txn slots).
        {
            let t = handles[0].register_thread();
            joins.push(std::thread::spawn(move || {
                let base = 512 * 1024 + c * 4096;
                for i in 0..60u64 {
                    t.write(0, base + (i % 16) * 8, &(c * 1000 + i).to_le_bytes())
                        .unwrap();
                    let v = t.read(0, base + (i % 16) * 8, 8).unwrap();
                    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), c * 1000 + i);
                }
            }));
        }

        // Keep the handles (and their dispatchers) alive until every
        // worker has joined.
        all_handles.push(handles);
    }

    for j in joins {
        j.join().unwrap();
    }
    drop(all_handles);

    // Invariant: the transfers conserved money despite everything else.
    let mut total = 0u64;
    for a in 0..80 {
        for key in [Smallbank::savings(a), Smallbank::checking(a)] {
            let p = key_partition(key, N_SERVERS);
            let v = txn_servers[p].peek(key).unwrap();
            total += u64::from_le_bytes(v[..8].try_into().unwrap());
        }
    }
    assert_eq!(total, initial_total);
    for s in &servers {
        s.shutdown(&domain);
    }
}
