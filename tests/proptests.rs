//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use flock_repro::core::credit::{CreditState, MedianWindow};
use flock_repro::core::msg::{self, EntryMeta, EntryRef, MsgHeader};
use flock_repro::core::ring::{align_up, RingConsumer, RingLayout, RingProducer};
use flock_repro::core::sched::thread::{assign_threads, ThreadLoadStats};
use flock_repro::fabric::{Access, MrTable};
use flock_repro::hydralist::{HydraConfig, HydraList};
use flock_repro::kvstore::{KvConfig, KvStore};
use flock_repro::sim::Histogram;
use flock_repro::txn::protocol::KeyRead;
use flock_repro::txn::protocol::{key_partition, replicas_of, TxnResp, TxnRpc};

proptest! {
    /// Any set of entries round-trips through the message codec.
    #[test]
    fn msg_codec_roundtrip(
        payloads in vec(vec(any::<u8>(), 0..200), 0..16),
        canary in 1u64..,
        head in any::<u64>(),
        aux in any::<u64>(),
        flags in 0u16..8,
    ) {
        let entries: Vec<EntryRef<'_>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| EntryRef {
                meta: EntryMeta {
                    len: p.len() as u32,
                    thread_id: i as u32,
                    seq: i as u64 * 3 + 1,
                    rpc_id: i as u32 % 7,
                },
                data: p,
            })
            .collect();
        let header = MsgHeader { total_len: 0, count: 0, flags, canary, head, aux };
        let mut buf = vec![0u8; msg::encoded_size(payloads.iter().map(|p| p.len()))];
        let n = msg::encode(&mut buf, &header, &entries).unwrap();
        prop_assert_eq!(n, buf.len());
        let view = msg::decode(&buf).unwrap().expect("complete");
        prop_assert_eq!(view.header.canary, canary);
        prop_assert_eq!(view.header.head, head);
        prop_assert_eq!(view.header.aux, aux);
        prop_assert_eq!(view.header.flags, flags);
        let decoded = view.to_entries();
        prop_assert_eq!(decoded.len(), payloads.len());
        for (i, (meta, data)) in decoded.iter().enumerate() {
            prop_assert_eq!(meta.thread_id, i as u32);
            prop_assert_eq!(*data, payloads[i].as_slice());
        }
    }

    /// Decoding never panics on arbitrary bytes; it returns Ok(None),
    /// Ok(Some) only for structurally valid messages, or an error.
    #[test]
    fn msg_decode_handles_garbage(bytes in vec(any::<u8>(), 0..512)) {
        let _ = msg::decode(&bytes);
    }

    /// Ring buffer: any sequence of variable-size messages delivered
    /// through a ring arrives intact, in order, exactly once.
    #[test]
    fn ring_delivers_in_order(sizes in vec(1usize..300, 1..40)) {
        let table = MrTable::new();
        let cap = 4096;
        let mr = table.register(cap, Access::REMOTE_ALL);
        let layout = RingLayout::new(0, cap);
        let mut prod = RingProducer::new(layout);
        let mut cons = RingConsumer::new(layout);
        for (i, &size) in sizes.iter().enumerate() {
            let payload: Vec<u8> = (0..size).map(|j| (i + j) as u8).collect();
            let mut staging = vec![0u8; msg::encoded_size([size])];
            let canary = i as u64 + 1;
            msg::encode(
                &mut staging,
                &MsgHeader { total_len: 0, count: 0, flags: 0, canary, head: 0, aux: 0 },
                &[EntryRef {
                    meta: EntryMeta { len: size as u32, thread_id: i as u32, seq: i as u64, rpc_id: 0 },
                    data: &payload,
                }],
            )
            .unwrap();
            let res = prod.reserve(staging.len()).unwrap();
            if let Some((woff, wlen)) = res.wrap {
                mr.write(woff, &RingProducer::wrap_record(wlen, canary)).unwrap();
            }
            mr.write(res.offset, &staging).unwrap();
            // Consume immediately (keeps the ring from filling).
            let m = cons.poll(&mr).unwrap().expect("message available");
            let view = m.view();
            let entries = view.to_entries();
            prop_assert_eq!(entries.len(), 1);
            prop_assert_eq!(entries[0].0.thread_id, i as u32);
            prop_assert_eq!(entries[0].1, payload.as_slice());
            prop_assert_eq!(align_up(staging.len()) as u64, align_up(m.len()) as u64);
            prod.update_head(cons.head());
        }
        prop_assert!(cons.poll(&mr).unwrap().is_none());
    }

    /// Algorithm 1 invariants: every thread is assigned, indices are in
    /// bounds, and the output is deterministic.
    #[test]
    fn assign_threads_is_total_and_bounded(
        threads in vec((1u32..5000, 0u64..100, 0u64..1_000_000), 0..40),
        num_qps in 1usize..16,
    ) {
        let stats: Vec<ThreadLoadStats> = threads
            .iter()
            .enumerate()
            .map(|(i, &(m, r, b))| ThreadLoadStats {
                thread_id: i as u32,
                median_req_size: m,
                requests: r,
                bytes: b,
            })
            .collect();
        let out = assign_threads(&stats, num_qps);
        prop_assert_eq!(out.len(), stats.len());
        let mut seen: Vec<u32> = out.iter().map(|(t, _)| *t).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), stats.len(), "every thread exactly once");
        prop_assert!(out.iter().all(|(_, q)| *q < num_qps));
        // Fairness: when there are at least as many threads as QPs, no QP
        // is left idle.
        if stats.len() >= num_qps {
            let mut used: Vec<usize> = out.iter().map(|(_, q)| *q).collect();
            used.sort_unstable();
            used.dedup();
            prop_assert_eq!(used.len(), num_qps);
        }
        prop_assert_eq!(out.clone(), assign_threads(&stats, num_qps));
    }

    /// Credit state machine: credits never go negative, renewal fires at
    /// or below half, and grants restore sending.
    #[test]
    fn credit_state_machine(ops in vec(0u8..4, 1..200)) {
        let mut c = CreditState::new(32);
        let mut sent = 0u64;
        for op in ops {
            match op {
                0 => {
                    if c.try_consume(1) {
                        sent += 1;
                    }
                }
                1 => {
                    if c.should_request_renewal() {
                        c.mark_requested();
                    }
                }
                2 => c.grant(32),
                _ => {
                    c.decline();
                    prop_assert!(!c.try_consume(1));
                    c.reactivate(32);
                }
            }
            prop_assert!(c.credits() <= 32 * 200);
        }
        let _ = sent;
    }

    /// MedianWindow returns a value that was actually recorded.
    #[test]
    fn median_is_a_recorded_value(values in vec(0u32..10_000, 1..100)) {
        let mut w = MedianWindow::new(64);
        for &v in &values {
            w.record(v);
        }
        let tail: Vec<u32> = values.iter().rev().take(64).copied().collect();
        prop_assert!(tail.contains(&w.median()));
    }

    /// KV store OCC: lock/commit/abort sequences never lose the value and
    /// version words only grow.
    #[test]
    fn kvstore_occ_versions_monotone(ops in vec(0u8..4, 1..100)) {
        let kv = KvStore::new(KvConfig { partitions: 2, stripes: 4 });
        kv.put(1, b"v0");
        let mut last_version = kv.get(1).unwrap().1 & !flock_repro::kvstore::LOCK_BIT;
        let mut locked = false;
        for op in ops {
            match op {
                0 => {
                    if kv.try_lock(1) {
                        locked = true;
                    }
                }
                1 if locked => {
                    kv.update_and_unlock(1, b"vn");
                    locked = false;
                }
                2 if locked => {
                    kv.unlock(1);
                    locked = false;
                }
                _ => {
                    let (_, word) = kv.get(1).unwrap();
                    let version = word & !flock_repro::kvstore::LOCK_BIT;
                    prop_assert!(version >= last_version);
                    last_version = version;
                }
            }
        }
        prop_assert!(kv.get(1).is_some());
    }

    /// HydraList agrees with a BTreeMap reference model under arbitrary
    /// insert/remove/get/scan sequences.
    #[test]
    fn hydralist_matches_btreemap(ops in vec((0u8..4, 0u64..200), 1..300)) {
        let h = HydraList::new(HydraConfig { node_capacity: 8, sync_search_updates: true });
        let mut model = std::collections::BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    prop_assert_eq!(h.insert(key, key + 1), model.insert(key, key + 1));
                }
                1 => {
                    prop_assert_eq!(h.remove(key), model.remove(&key));
                }
                2 => {
                    prop_assert_eq!(h.get(key), model.get(&key).copied());
                }
                _ => {
                    let got = h.scan(key, 10);
                    let expect: Vec<(u64, u64)> =
                        model.range(key..).take(10).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(h.len(), model.len());
        }
    }

    /// Transaction wire protocol round-trips for arbitrary requests.
    #[test]
    fn txn_rpc_roundtrip(
        txn_id in any::<u64>(),
        keys in vec(any::<u64>(), 0..20),
        values in vec(vec(any::<u8>(), 0..64), 0..10),
    ) {
        let kvs: Vec<(u64, Vec<u8>)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        for rpc in [
            TxnRpc::Execute { txn_id, reads: keys.clone(), writes: keys.clone() },
            TxnRpc::Log { txn_id, writes: kvs.clone() },
            TxnRpc::Commit { txn_id, writes: kvs },
            TxnRpc::Abort { txn_id, writes: keys },
        ] {
            prop_assert_eq!(TxnRpc::decode(&rpc.encode()), Some(rpc));
        }
    }

    /// Transaction responses round-trip too.
    #[test]
    fn txn_resp_roundtrip(
        ok in any::<bool>(),
        reads in vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..10),
    ) {
        let set: Vec<KeyRead> = reads
            .iter()
            .map(|&(key, word, slot)| KeyRead {
                key,
                value: if word % 2 == 0 { Some(word.to_le_bytes().to_vec()) } else { None },
                word,
                slot,
            })
            .collect();
        let resp = TxnResp::Execute { ok, reads: set.clone(), writes: set };
        prop_assert_eq!(TxnResp::decode(&resp.encode()), Some(resp));
    }

    /// Partitioning: primary and its two replicas are always distinct, and
    /// the partition function is total.
    #[test]
    fn partition_replicas_distinct(key in any::<u64>(), n in 3usize..12) {
        let p = key_partition(key, n);
        prop_assert!(p < n);
        let [r1, r2] = replicas_of(p, n);
        prop_assert!(r1 != p && r2 != p && r1 != r2);
    }

    /// The histogram's quantiles are within its relative-error bound.
    #[test]
    fn histogram_quantile_error_bounded(values in vec(1u64..1_000_000, 10..500)) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            prop_assert!(
                (got - exact).abs() <= exact * 0.04 + 1.0,
                "q={} got={} exact={}", q, got, exact
            );
        }
    }
}
